//! A persistent pool of affinity-bound workers with scoped broadcasts.
//!
//! The paper replaces OpenMP's worksharing with a proprietary scheduler
//! that only uses OpenMP to create threads and pin them; all work
//! distribution is explicit. [`WorkerPool`] plays that role here: it
//! spawns one long-lived thread per logical CPU of the modelled machine
//! and executes *broadcasts* — a closure run once on every worker, with
//! the pool guaranteeing completion before the call returns, so the
//! closure may borrow from the caller's stack.
//!
//! # Completion latch protocol
//!
//! Each broadcast allocates one [`Latch`]: a `Mutex<LatchState>` holding
//! the count of outstanding workers (plus the first panic payload, if
//! any) and a `Condvar` the caller blocks on. The protocol has three
//! rules, in this order of importance:
//!
//! 1. **Every dispatched task arrives exactly once.** Arrival is
//!    performed by the destructor of an [`ArriveOnDrop`] guard created
//!    *before* the user closure runs, so the latch is decremented even
//!    if the closure's panic escapes `catch_unwind` (e.g. a panic
//!    raised while the payload itself is being handled) — the unwind
//!    still runs the guard's destructor on its way out.
//! 2. **The caller consumes no CPU while workers run.** It waits on the
//!    `Condvar` under the latch mutex; the last worker to arrive
//!    notifies it. There is no spin or yield loop anywhere in the path.
//! 3. **Poisoning is ignored on purpose.** A panicking worker poisons
//!    the latch mutex between its lock and unlock only if the panic
//!    happens *inside* `arrive`, which performs no user code; both
//!    sides therefore treat a poisoned lock as still-valid state
//!    (`PoisonError::into_inner`) so one propagated panic cannot brick
//!    subsequent broadcasts.

use crate::affinity::{AffinityMap, LogicalCpu};
use crate::sync::{Condvar, Mutex};
use std::any::Any;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::mpsc::{channel, Sender};
use std::sync::Arc;
use std::thread::JoinHandle;

/// Context handed to a broadcast closure on each worker.
#[derive(Clone, Copy, Debug)]
pub struct WorkerCtx {
    /// Dense worker index in `0..pool.len()`.
    pub worker: usize,
    /// Logical CPU of the modelled machine this worker is bound to.
    pub cpu: LogicalCpu,
}

type Task = Box<dyn FnOnce() + Send + 'static>;
type PanicPayload = Box<dyn Any + Send>;

/// Countdown latch a broadcast caller blocks on (see the module docs
/// for the full protocol). `pub(crate)` so the model-checking suite
/// can drive the exact production protocol through the shims.
#[derive(Debug)]
pub(crate) struct Latch {
    state: Mutex<LatchState>,
    all_done: Condvar,
}

#[derive(Debug)]
struct LatchState {
    remaining: usize,
    panic: Option<PanicPayload>,
}

impl Latch {
    pub(crate) fn new(parties: usize) -> Self {
        Latch {
            state: Mutex::with_label(
                LatchState {
                    remaining: parties,
                    panic: None,
                },
                "latch.state",
            ),
            all_done: Condvar::with_label("latch.all-done"),
        }
    }

    /// Records one task as finished (stashing the first panic payload)
    /// and wakes the caller when it was the last.
    pub(crate) fn arrive(&self, payload: Option<PanicPayload>) {
        let mut st = self
            .state
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        st.remaining -= 1;
        if st.panic.is_none() {
            st.panic = payload;
        }
        if st.remaining == 0 {
            self.all_done.notify_all();
        }
    }

    /// Blocks (on the condvar — no CPU burned) until every party has
    /// arrived; returns the first panic payload, if any was stashed.
    pub(crate) fn wait(&self) -> Option<PanicPayload> {
        let mut st = self
            .state
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        while st.remaining != 0 {
            st = self
                .all_done
                .wait(st)
                .unwrap_or_else(std::sync::PoisonError::into_inner);
        }
        st.panic.take()
    }
}

/// Arrival guard: decrements the latch in its destructor so a task
/// arrives exactly once on every exit path — normal return, caught
/// panic, or an unwind that bypasses the task's own `catch_unwind`.
struct ArriveOnDrop {
    latch: Arc<Latch>,
    payload: Option<PanicPayload>,
}

impl Drop for ArriveOnDrop {
    fn drop(&mut self) {
        self.latch.arrive(self.payload.take());
    }
}

/// A fixed-size pool of persistent worker threads.
///
/// # Examples
///
/// ```
/// use work_scheduler::WorkerPool;
/// use std::sync::atomic::{AtomicUsize, Ordering};
/// let pool = WorkerPool::new(4);
/// let hits = AtomicUsize::new(0);
/// pool.broadcast(|ctx| {
///     hits.fetch_add(ctx.worker + 1, Ordering::SeqCst);
/// });
/// assert_eq!(hits.load(Ordering::SeqCst), 1 + 2 + 3 + 4);
/// ```
#[derive(Debug)]
pub struct WorkerPool {
    affinity: AffinityMap,
    senders: Vec<Sender<Task>>,
    handles: Vec<JoinHandle<()>>,
    /// Live telemetry collector, if attached (see
    /// [`WorkerPool::attach_telemetry`]). Stopped before the workers
    /// are joined so its final pass folds every span they recorded.
    #[cfg(not(feature = "model"))]
    telemetry: Option<islands_trace::collector::Collector>,
}

impl WorkerPool {
    /// Spawns `workers` threads bound compactly (worker `w` → CPU `w`).
    ///
    /// # Panics
    ///
    /// Panics if `workers == 0`.
    pub fn new(workers: usize) -> Self {
        Self::with_affinity(AffinityMap::compact(workers))
    }

    /// Spawns one thread per entry of `affinity`.
    ///
    /// # Panics
    ///
    /// Panics if the map is empty.
    pub fn with_affinity(affinity: AffinityMap) -> Self {
        assert!(!affinity.is_empty(), "a pool needs at least one worker");
        let mut senders = Vec::with_capacity(affinity.len());
        let mut handles = Vec::with_capacity(affinity.len());
        for (worker, cpu) in affinity.iter() {
            let (tx, rx) = channel::<Task>();
            senders.push(tx);
            let handle = std::thread::Builder::new()
                .name(format!("worker-{worker}-{cpu}"))
                .spawn(move || {
                    while let Ok(task) = rx.recv() {
                        // The worker must outlive any single task: a
                        // panic that escapes the task (its own
                        // catch_unwind was bypassed) is swallowed here —
                        // the task's arrival guard has already delivered
                        // the payload to the caller.
                        let _ = catch_unwind(AssertUnwindSafe(task));
                    }
                })
                .expect("failed to spawn pool worker");
            handles.push(handle);
        }
        WorkerPool {
            affinity,
            senders,
            handles,
            #[cfg(not(feature = "model"))]
            telemetry: None,
        }
    }

    /// Attaches a live telemetry collector: a background thread that
    /// drains every trace ring (through the concurrent seqlock
    /// protocol) into `registry` once per `interval`, while the pool's
    /// workers keep recording. Replaces any previously attached
    /// collector (stopping it first). The collector lives until
    /// [`WorkerPool::detach_telemetry`] or the pool is dropped,
    /// whichever comes first; either way its final pass runs before
    /// the workers are joined, so no span is left unfolded.
    #[cfg(not(feature = "model"))]
    pub fn attach_telemetry(
        &mut self,
        registry: std::sync::Arc<islands_trace::registry::MetricsRegistry>,
        interval: std::time::Duration,
    ) {
        self.detach_telemetry();
        self.telemetry = Some(islands_trace::collector::Collector::start(
            registry, interval,
        ));
    }

    /// Stops and joins the attached collector (running its final
    /// drain pass). No-op when none is attached.
    #[cfg(not(feature = "model"))]
    pub fn detach_telemetry(&mut self) {
        if let Some(mut collector) = self.telemetry.take() {
            collector.stop();
        }
    }

    /// Number of workers.
    pub fn len(&self) -> usize {
        self.senders.len()
    }

    /// Whether the pool has no workers (never true once constructed).
    pub fn is_empty(&self) -> bool {
        self.senders.is_empty()
    }

    /// The affinity map the pool was built with.
    pub fn affinity(&self) -> &AffinityMap {
        &self.affinity
    }

    /// Runs `f` once on every worker and returns when all have finished.
    ///
    /// `f` may borrow from the caller because the call blocks until every
    /// worker is done with it. The caller sleeps on a condition variable
    /// while workers run; it consumes no CPU.
    ///
    /// # Panics
    ///
    /// If any worker's invocation panics, the first panic payload is
    /// re-raised on the caller after all workers have finished the
    /// broadcast; the pool remains usable afterwards.
    pub fn broadcast<F>(&self, f: F)
    where
        F: Fn(WorkerCtx) + Sync,
    {
        // Span over the whole dispatch, recorded on the caller thread
        // (island NO_ISLAND unless the caller tagged itself).
        let t0 = islands_trace::now();
        let latch = Arc::new(Latch::new(self.len()));
        let f_ref: &(dyn Fn(WorkerCtx) + Sync) = &f;
        // SAFETY: the tasks sent below are joined before this function
        // returns — `latch.wait()` blocks until every dispatched task's
        // arrival guard has run, and tasks that could not be dispatched
        // arrive synchronously right here — so the erased borrow of `f`
        // never outlives the call. This is the classic scoped-pool
        // pattern with a latch in place of thread joins.
        let f_static: &'static (dyn Fn(WorkerCtx) + Sync) = unsafe { std::mem::transmute(f_ref) };
        let mut dead_worker = false;
        for (worker, cpu) in self.affinity.iter() {
            if dead_worker {
                // A previous send failed; account for this never-sent
                // task so `wait` below still terminates.
                latch.arrive(None);
                continue;
            }
            let latch_task = Arc::clone(&latch);
            let ctx = WorkerCtx { worker, cpu };
            let task: Task = Box::new(move || {
                let mut guard = ArriveOnDrop {
                    latch: latch_task,
                    payload: None,
                };
                if let Err(payload) = catch_unwind(AssertUnwindSafe(|| f_static(ctx))) {
                    guard.payload = Some(payload);
                }
                // `guard` drops here (or during an unwind that bypassed
                // the catch above), performing the arrival.
            });
            if self.senders[worker].send(task).is_err() {
                // The worker thread is gone (it can only have exited via
                // a channel disconnect race during shutdown). The unsent
                // task was dropped without running; arrive on its
                // behalf, then keep draining the latch before failing so
                // tasks already dispatched release their borrow of `f`.
                latch.arrive(None);
                dead_worker = true;
            }
        }
        let payload = latch.wait();
        if let Some(t0) = t0 {
            islands_trace::record(
                islands_trace::SpanKind::Dispatch,
                t0,
                islands_trace::now_ns(),
                0,
                0,
                [self.len() as u64, 0, 0],
            );
        }
        assert!(!dead_worker, "pool worker exited prematurely");
        if let Some(payload) = payload {
            std::panic::resume_unwind(payload);
        }
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        // Stop the collector first: its final pass folds the spans the
        // workers recorded before any of them is joined away.
        #[cfg(not(feature = "model"))]
        self.detach_telemetry();
        // Closing the channels terminates the worker loops.
        self.senders.clear();
        for h in self.handles.drain(..) {
            // Worker loops swallow task panics, so joins only fail if a
            // thread was killed externally; ignore the error to keep
            // Drop infallible.
            let _ = h.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn broadcast_runs_on_every_worker_once() {
        let pool = WorkerPool::new(6);
        let mask = AtomicUsize::new(0);
        pool.broadcast(|ctx| {
            mask.fetch_or(1 << ctx.worker, Ordering::SeqCst);
        });
        assert_eq!(mask.load(Ordering::SeqCst), 0b111111);
    }

    #[test]
    fn broadcast_may_borrow_stack_data() {
        let pool = WorkerPool::new(3);
        let data = [1_usize, 2, 3];
        let sum = AtomicUsize::new(0);
        pool.broadcast(|ctx| {
            sum.fetch_add(data[ctx.worker], Ordering::SeqCst);
        });
        assert_eq!(sum.load(Ordering::SeqCst), 6);
    }

    #[test]
    fn broadcasts_are_sequentially_consistent() {
        let pool = WorkerPool::new(4);
        let mut total = 0_usize;
        for round in 0..50 {
            let c = AtomicUsize::new(0);
            pool.broadcast(|_| {
                c.fetch_add(1, Ordering::SeqCst);
            });
            assert_eq!(c.load(Ordering::SeqCst), 4, "round {round}");
            total += c.load(Ordering::SeqCst);
        }
        assert_eq!(total, 200);
    }

    #[test]
    fn panic_in_worker_propagates() {
        let pool = WorkerPool::new(2);
        let r = std::panic::catch_unwind(AssertUnwindSafe(|| {
            pool.broadcast(|ctx| {
                if ctx.worker == 1 {
                    panic!("boom");
                }
            });
        }));
        assert!(r.is_err());
        // The pool must remain usable after a propagated panic.
        let c = AtomicUsize::new(0);
        pool.broadcast(|_| {
            c.fetch_add(1, Ordering::SeqCst);
        });
        assert_eq!(c.load(Ordering::SeqCst), 2);
    }

    #[test]
    fn panic_on_every_worker_propagates_one_payload() {
        // All workers panic in the same broadcast: exactly one payload
        // reaches the caller, and the latch still completes (no hang,
        // no double-arrival).
        let pool = WorkerPool::new(4);
        for round in 0..10 {
            let r = std::panic::catch_unwind(AssertUnwindSafe(|| {
                pool.broadcast(|ctx| panic!("round {round} worker {}", ctx.worker));
            }));
            let payload = r.expect_err("broadcast must propagate");
            let msg = payload
                .downcast_ref::<String>()
                .expect("panic carries its message");
            assert!(msg.starts_with(&format!("round {round} ")), "{msg}");
        }
        let c = AtomicUsize::new(0);
        pool.broadcast(|_| {
            c.fetch_add(1, Ordering::SeqCst);
        });
        assert_eq!(c.load(Ordering::SeqCst), 4);
    }

    #[test]
    fn panic_in_team_run_propagates_and_pool_survives() {
        use crate::team::TeamSpec;
        let pool = WorkerPool::new(4);
        let spec = TeamSpec::even(4, 2);
        // Every rank panics before its first barrier, so no rank is left
        // waiting on a peer that already unwound.
        let r = std::panic::catch_unwind(AssertUnwindSafe(|| {
            pool.run_teams(&spec, |ctx| {
                panic!("team {} rank {} failed", ctx.team, ctx.rank);
            });
        }));
        assert!(r.is_err());
        // Nested recovery: a full team run (with barriers) must work on
        // the same pool right after the propagated panic.
        let t = AtomicUsize::new(0);
        pool.run_teams(&spec, |ctx| {
            ctx.team_barrier();
            t.fetch_add(1, Ordering::SeqCst);
            ctx.team_barrier();
        });
        assert_eq!(t.load(Ordering::SeqCst), 4);
        // And a plain broadcast after the team recovery.
        let c = AtomicUsize::new(0);
        pool.broadcast(|_| {
            c.fetch_add(1, Ordering::SeqCst);
        });
        assert_eq!(c.load(Ordering::SeqCst), 4);
    }

    #[test]
    fn alternating_panicking_and_clean_broadcasts() {
        // Interleave failing and healthy broadcasts to check the latch
        // never carries state across calls.
        let pool = WorkerPool::new(3);
        for round in 0..8 {
            if round % 2 == 0 {
                let r = std::panic::catch_unwind(AssertUnwindSafe(|| {
                    pool.broadcast(|ctx| {
                        if ctx.worker == round % 3 {
                            panic!("scheduled failure");
                        }
                    });
                }));
                assert!(r.is_err(), "round {round}");
            } else {
                let c = AtomicUsize::new(0);
                pool.broadcast(|_| {
                    c.fetch_add(1, Ordering::SeqCst);
                });
                assert_eq!(c.load(Ordering::SeqCst), 3, "round {round}");
            }
        }
    }

    #[test]
    fn pool_churn_is_clean() {
        // Creating and dropping many pools must neither leak threads
        // visibly (joins in Drop) nor deadlock.
        for n in 1..=16 {
            let pool = WorkerPool::new(1 + n % 4);
            let c = AtomicUsize::new(0);
            pool.broadcast(|_| {
                c.fetch_add(1, Ordering::SeqCst);
            });
            assert_eq!(c.load(Ordering::SeqCst), pool.len());
            drop(pool);
        }
    }

    #[test]
    fn interleaved_broadcasts_and_team_runs() {
        use crate::team::TeamSpec;
        let pool = WorkerPool::new(6);
        for round in 0..20 {
            let c = AtomicUsize::new(0);
            pool.broadcast(|_| {
                c.fetch_add(1, Ordering::SeqCst);
            });
            assert_eq!(c.load(Ordering::SeqCst), 6, "round {round}");
            let spec = TeamSpec::even(6, if round % 2 == 0 { 2 } else { 3 });
            let t = AtomicUsize::new(0);
            pool.run_teams(&spec, |ctx| {
                ctx.team_barrier();
                t.fetch_add(1, Ordering::SeqCst);
                ctx.team_barrier();
            });
            assert_eq!(t.load(Ordering::SeqCst), 6, "round {round}");
        }
    }

    #[test]
    fn affinity_is_visible_in_ctx() {
        use crate::affinity::LogicalCpu;
        let pool =
            WorkerPool::with_affinity(AffinityMap::explicit(vec![LogicalCpu(7), LogicalCpu(3)]));
        let seen = std::sync::Mutex::new(Vec::new());
        pool.broadcast(|ctx| {
            seen.lock().unwrap().push((ctx.worker, ctx.cpu));
        });
        let mut v = seen.lock().unwrap().clone();
        v.sort();
        assert_eq!(v, vec![(0, LogicalCpu(7)), (1, LogicalCpu(3))]);
    }

    #[test]
    #[cfg(not(feature = "model"))]
    fn attached_collector_folds_live_spans() {
        use islands_trace::registry::MetricsRegistry;
        use std::sync::Arc;
        use std::time::Duration;

        let mut pool = WorkerPool::new(3);
        let registry = Arc::new(MetricsRegistry::new(4));
        pool.attach_telemetry(Arc::clone(&registry), Duration::from_millis(1));
        // Detach-before-attach and re-attach must both be clean.
        pool.attach_telemetry(Arc::clone(&registry), Duration::from_millis(1));

        let session = islands_trace::Session::start();
        pool.broadcast(|_| {
            islands_trace::set_island_rank(1, 0);
            islands_trace::set_step(5);
            let t0 = islands_trace::now().expect("session enabled");
            islands_trace::record(
                islands_trace::SpanKind::Kernel,
                t0,
                t0 + 1000,
                2,
                0,
                [64, 8, 0],
            );
        });
        // Detach runs the collector's final pass, so everything the
        // broadcast recorded (plus the caller's dispatch span) is
        // folded without any interval-timing assumptions.
        pool.detach_telemetry();
        let snap = registry.snapshot();
        assert!(snap.dispatch_ns > 0, "dispatch span not folded: {snap:?}");
        assert_eq!(snap.current_step, 5);
        let island = snap
            .islands
            .iter()
            .find(|i| i.island == 1)
            .expect("island 1 folded");
        assert_eq!(island.kernel_ns, 3 * 1000);
        assert_eq!(island.computed_cells, 3 * 64);
        assert_eq!(snap.dropped_events, 0);
        assert_eq!(snap.unpublished, 0);
        // The quiescent drain is undisturbed by the live collector: it
        // re-reads the full window through its own cursor.
        let drained = session.finish();
        assert_eq!(
            drained
                .events
                .iter()
                .filter(|t| t.ev.kind == islands_trace::SpanKind::Kernel)
                .count(),
            3
        );
        // Detach is idempotent; Drop with no collector attached is too.
        pool.detach_telemetry();
    }

    #[test]
    #[cfg(target_os = "linux")]
    fn caller_blocks_without_burning_cpu() {
        // While workers sleep inside the closure, the calling thread
        // must be parked on the latch condvar, not spinning. Measure the
        // caller's thread CPU time across a broadcast that sleeps.
        fn thread_cpu_ns() -> u64 {
            let mut ts = std::mem::MaybeUninit::<libc_timespec>::uninit();
            #[repr(C)]
            #[allow(non_camel_case_types)]
            struct libc_timespec {
                tv_sec: i64,
                tv_nsec: i64,
            }
            extern "C" {
                fn clock_gettime(clk_id: i32, tp: *mut libc_timespec) -> i32;
            }
            const CLOCK_THREAD_CPUTIME_ID: i32 = 3;
            let rc = unsafe { clock_gettime(CLOCK_THREAD_CPUTIME_ID, ts.as_mut_ptr()) };
            assert_eq!(rc, 0);
            let ts = unsafe { ts.assume_init() };
            ts.tv_sec as u64 * 1_000_000_000 + ts.tv_nsec as u64
        }
        let pool = WorkerPool::new(2);
        let before = thread_cpu_ns();
        pool.broadcast(|_| {
            std::thread::sleep(std::time::Duration::from_millis(150));
        });
        let spent = thread_cpu_ns() - before;
        // A spin loop would burn ~150 ms of CPU here; condvar parking
        // costs microseconds. Allow generous slack for dispatch cost.
        assert!(
            spent < 50_000_000,
            "caller burned {spent} ns of CPU during a sleeping broadcast"
        );
    }
}
