//! Dynamic self-scheduling: an atomic chunk queue for load-imbalanced
//! sweeps.
//!
//! The paper's scheduler distributes work statically (equal slices per
//! core), which is optimal for MPDATA's homogeneous stages. For
//! imbalanced workloads — variant B's thin parts, boundary-heavy stages
//! — a team can instead *self-schedule*: ranks repeatedly claim the next
//! chunk index from an atomic counter until the range is drained.

use crate::sync::{ord, AtomicUsize};
use std::sync::atomic::Ordering;

/// An atomic work queue over the chunk indices `0..chunks`.
///
/// # Examples
///
/// ```
/// use work_scheduler::{ChunkQueue, WorkerPool};
/// use std::sync::atomic::{AtomicUsize, Ordering};
///
/// let pool = WorkerPool::new(4);
/// let queue = ChunkQueue::new(100);
/// let done = AtomicUsize::new(0);
/// pool.broadcast(|_| {
///     while let Some(_chunk) = queue.claim() {
///         done.fetch_add(1, Ordering::Relaxed);
///     }
/// });
/// assert_eq!(done.load(Ordering::Relaxed), 100);
/// ```
#[derive(Debug)]
pub struct ChunkQueue {
    next: AtomicUsize,
    chunks: usize,
}

impl ChunkQueue {
    /// Creates a queue over `0..chunks`.
    pub fn new(chunks: usize) -> Self {
        ChunkQueue {
            next: AtomicUsize::with_label(0, "chunkq.next"),
            chunks,
        }
    }

    /// Claims the next chunk index, or `None` when drained.
    ///
    /// Saturating: once the queue is drained, further claims observe
    /// the drained state without bumping the counter, so the counter
    /// overshoots `chunks` by at most the number of concurrent
    /// claimants — repeated polling of a drained queue (the idle ranks
    /// of a self-scheduled epoch) can never wrap it.
    pub fn claim(&self) -> Option<usize> {
        // ordering: Relaxed — the saturation gate is a heuristic
        // (claims race past it by design, bounded by the claimant
        // count); correctness comes from the RMW below.
        if self
            .next
            .load(ord("chunkq.fastpath-load", Ordering::Relaxed))
            >= self.chunks
        {
            return None;
        }
        // ordering: Relaxed — uniqueness is carried by RMW atomicity
        // alone (two claims can never return the same index); the
        // caller orders chunk *data* via the epoch barriers, never via
        // this counter. Verified minimal by the model suite.
        let n = self
            .next
            .fetch_add(1, ord("chunkq.claim-rmw", Ordering::Relaxed));
        (n < self.chunks).then_some(n)
    }

    /// Claims up to `batch` consecutive chunks, returning their range.
    /// Larger batches amortize the atomic per claim; `None` when
    /// drained (saturating, like [`ChunkQueue::claim`]).
    pub fn claim_batch(&self, batch: usize) -> Option<std::ops::Range<usize>> {
        let batch = batch.max(1);
        // ordering: Relaxed — same saturation-gate contract as `claim`.
        if self
            .next
            .load(ord("chunkq.fastpath-load", Ordering::Relaxed))
            >= self.chunks
        {
            return None;
        }
        // ordering: Relaxed — same uniqueness-by-atomicity contract as
        // the single-chunk claim RMW.
        let start = self
            .next
            .fetch_add(batch, ord("chunkq.claim-batch-rmw", Ordering::Relaxed));
        if start >= self.chunks {
            return None;
        }
        Some(start..(start + batch).min(self.chunks))
    }

    /// Chunks not yet claimed.
    ///
    /// # Ordering contract
    ///
    /// All counter traffic is `Relaxed`: claims, resets and this
    /// snapshot order only against the epoch barriers the caller
    /// provides, never against each other. Concretely:
    ///
    /// * **exact** when claimants are quiescent — at a barrier-fenced
    ///   point after a drain (`0`) or after a fenced [`ChunkQueue::reset`]
    ///   (`len()`);
    /// * **a racy snapshot** while claims are in flight: it may lag
    ///   behind claims already granted on other threads;
    /// * **bounded either way**: the claim counter can overshoot
    ///   `len()` (each drained-queue `claim` race bumps it once) and a
    ///   concurrent `reset` can expose that overshoot mid-write, so
    ///   the raw subtraction could briefly "exceed" the queue or wrap;
    ///   the explicit clamp below pins every snapshot into
    ///   `0..=len()`.
    pub fn remaining(&self) -> usize {
        // ordering: Relaxed — racy snapshot by contract (see above);
        // exactness is only promised at barrier-fenced quiescent points,
        // where the barrier provides the edge.
        let claimed = self
            .next
            .load(ord("chunkq.remaining-load", Ordering::Relaxed))
            .min(self.chunks);
        self.chunks - claimed
    }

    /// Total chunks.
    pub fn len(&self) -> usize {
        self.chunks
    }

    /// Whether the queue covers no chunks at all.
    pub fn is_empty(&self) -> bool {
        self.chunks == 0
    }

    /// Resets the queue for reuse (callers must ensure no concurrent
    /// claims, e.g. by a barrier).
    pub fn reset(&self) {
        // ordering: Relaxed — the caller's barrier orders the reset
        // against surrounding claims (quiescence is a documented
        // precondition); the model suite checks the barrier-fenced
        // claim/reset/claim episode end to end at this ordering.
        self.next
            .store(0, ord("chunkq.reset-store", Ordering::Relaxed));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pool::WorkerPool;
    use std::sync::Mutex;

    #[test]
    fn every_chunk_claimed_exactly_once() {
        let pool = WorkerPool::new(8);
        let queue = ChunkQueue::new(1000);
        let claimed = Mutex::new(vec![0u8; 1000]);
        pool.broadcast(|_| {
            while let Some(c) = queue.claim() {
                claimed.lock().unwrap()[c] += 1;
            }
        });
        assert!(claimed.lock().unwrap().iter().all(|&c| c == 1));
    }

    #[test]
    fn batches_cover_without_overlap() {
        let pool = WorkerPool::new(4);
        let queue = ChunkQueue::new(103); // not a multiple of the batch
        let claimed = Mutex::new(vec![0u8; 103]);
        pool.broadcast(|_| {
            while let Some(r) = queue.claim_batch(8) {
                let mut g = claimed.lock().unwrap();
                for c in r {
                    g[c] += 1;
                }
            }
        });
        assert!(claimed.lock().unwrap().iter().all(|&c| c == 1));
    }

    #[test]
    fn imbalanced_work_is_stolen_by_idle_ranks() {
        // One chunk is 100× heavier; dynamic scheduling keeps the
        // completion spread far below the heavy chunk count.
        let pool = WorkerPool::new(4);
        let queue = ChunkQueue::new(64);
        let per_worker = Mutex::new(vec![0usize; 4]);
        pool.broadcast(|ctx| {
            while let Some(c) = queue.claim() {
                // Emulate imbalance: chunk 0 is slow.
                let spins = if c == 0 { 200_000 } else { 2_000 };
                let mut acc = 0u64;
                for n in 0..spins {
                    acc = acc.wrapping_add(n);
                }
                std::hint::black_box(acc);
                per_worker.lock().unwrap()[ctx.worker] += 1;
            }
        });
        let v = per_worker.lock().unwrap().clone();
        assert_eq!(v.iter().sum::<usize>(), 64);
        // The worker stuck on chunk 0 must have claimed fewer chunks
        // than the sum of the others (work moved, not waited).
        let min = v.iter().min().unwrap();
        let rest: usize = v.iter().sum::<usize>() - min;
        assert!(rest > 3 * min, "no stealing happened: {v:?}");
    }

    #[test]
    fn reset_allows_reuse() {
        let q = ChunkQueue::new(3);
        assert_eq!(q.claim(), Some(0));
        q.reset();
        assert_eq!(q.claim(), Some(0));
        assert_eq!(q.claim(), Some(1));
        assert_eq!(q.claim(), Some(2));
        assert_eq!(q.claim(), None);
        assert_eq!(q.claim(), None, "drained queue stays drained");
    }

    #[test]
    fn empty_queue() {
        let q = ChunkQueue::new(0);
        assert!(q.is_empty());
        assert_eq!(q.claim(), None);
        assert_eq!(q.claim_batch(4), None);
    }

    #[test]
    fn drained_counter_saturates() {
        // Polling a drained queue must not keep bumping the counter:
        // repeated idle-rank claims over many epochs would otherwise
        // creep the counter toward wraparound.
        let q = ChunkQueue::new(2);
        assert_eq!(q.claim(), Some(0));
        assert_eq!(q.claim(), Some(1));
        for _ in 0..1000 {
            assert_eq!(q.claim(), None);
            assert_eq!(q.claim_batch(8), None);
        }
        assert_eq!(q.next.load(Ordering::Relaxed), 2, "counter kept growing");
        assert_eq!(q.remaining(), 0);
        q.reset();
        assert_eq!(q.remaining(), 2);
        assert_eq!(q.claim(), Some(0));
    }

    #[test]
    fn concurrent_reuse_across_epochs_is_exact() {
        // The plan replay resets every epoch queue between barriers and
        // drains it again; each epoch must see every chunk exactly once
        // with no reallocation in between.
        let pool = WorkerPool::new(4);
        let queue = ChunkQueue::new(37);
        for epoch in 0..50 {
            let claimed = Mutex::new(vec![0u8; 37]);
            pool.broadcast(|_| {
                while let Some(c) = queue.claim() {
                    claimed.lock().unwrap()[c] += 1;
                }
            });
            let counts = claimed.lock().unwrap();
            assert!(counts.iter().all(|&c| c == 1), "epoch {epoch}: {counts:?}");
            assert_eq!(queue.remaining(), 0);
            queue.reset();
        }
    }

    #[test]
    fn remaining_is_always_in_bounds_under_reset_claim_races() {
        // Loom-style stress: three claimant workers hammer `claim`
        // (overshooting the counter past `chunks` on every drained
        // poll) while a fourth interleaves `reset` — and an observer
        // samples `remaining` the whole time. Every sample must stay
        // within 0..=len() even though the counter itself transiently
        // exceeds `chunks` mid-reset.
        use std::sync::atomic::AtomicBool;
        let pool = WorkerPool::new(4);
        let queue = ChunkQueue::new(16);
        let stop = AtomicBool::new(false);
        let violations = Mutex::new(Vec::new());
        pool.broadcast(|ctx| match ctx.worker {
            // Claimants: drain and poll the drained queue (overshoot).
            0 | 1 => {
                while !stop.load(Ordering::Relaxed) {
                    let _ = queue.claim();
                    let _ = queue.claim_batch(4);
                }
            }
            // Resetter: rewind mid-flight, repeatedly.
            2 => {
                for _ in 0..20_000 {
                    queue.reset();
                }
                stop.store(true, Ordering::Relaxed);
            }
            // Observer: every snapshot must be in bounds.
            _ => {
                while !stop.load(Ordering::Relaxed) {
                    let r = queue.remaining();
                    if r > queue.len() {
                        violations.lock().unwrap().push(r);
                    }
                }
            }
        });
        let v = violations.lock().unwrap();
        assert!(v.is_empty(), "remaining() exceeded len(): {v:?}");
        // Quiescent exactness: fenced reset → len(), drain → 0.
        queue.reset();
        assert_eq!(queue.remaining(), 16);
        while queue.claim().is_some() {}
        assert_eq!(queue.remaining(), 0);
    }

    #[test]
    fn panic_in_claimant_propagates_through_broadcast() {
        // A kernel panic inside a self-scheduled chunk must surface
        // from `WorkerPool::broadcast`, not hang the team — and the
        // pool must stay usable for the next dispatch.
        let pool = WorkerPool::new(4);
        let queue = ChunkQueue::new(64);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            pool.broadcast(|_| {
                while let Some(c) = queue.claim() {
                    assert!(c != 13, "chunk 13 is poisoned");
                }
            });
        }));
        assert!(result.is_err(), "claimant panic was swallowed");
        queue.reset();
        let drained = std::sync::atomic::AtomicUsize::new(0);
        pool.broadcast(|_| {
            while let Some(_c) = queue.claim() {
                drained.fetch_add(1, Ordering::Relaxed);
            }
        });
        assert_eq!(
            drained.load(Ordering::Relaxed),
            64,
            "pool unusable after panic"
        );
    }
}
