//! CI driver for the model-checked protocol suite (the concurrency
//! sibling of `stencil-lint`).
//!
//! Modes:
//!
//! * *(no args)* — explore every protocol scenario at its documented
//!   bounds; exit nonzero if any counterexample is found or any
//!   exploration hits its execution bound (not exhaustive).
//! * `--proto NAME` — explore a single named scenario.
//! * `--matrix` — run the ordering-minimality matrix: every named site
//!   weakened one step must either be caught with a counterexample or
//!   already be at the weakest ordering; exit nonzero on any mismatch.
//! * `--mutant SITE` — weaken one named site a step and explore its
//!   scenario. Exits **nonzero when the mutant is caught** (printing
//!   the counterexample), zero when the weakened run explores clean —
//!   CI asserts the nonzero exit, `if protocol-check --mutant X; then
//!   exit 1; fi` style.
//! * `--trace SITE` — like `--mutant`, but also pretty-prints the full
//!   replayable counterexample trace and verifies the recorded
//!   schedule replays to the same failure.
//! * `--list-sites` — print the matrix table (site, ordering, class,
//!   scenario, expected verdict).

use islands_modelcheck::{format_trace, Checker};
use std::process::ExitCode;
use work_scheduler::modelcheck_suite as suite;

fn run_suite(only: Option<&str>) -> ExitCode {
    let _g = suite::serial_guard();
    let mut failed = false;
    for proto in suite::protocols() {
        if only.is_some_and(|o| o != proto.name) {
            continue;
        }
        let started = std::time::Instant::now();
        let report = Checker::new(proto.cfg).check(proto.build);
        println!("{} [{:.1?}]", report.summary(), started.elapsed());
        println!("    bounds: {}", proto.bounds_note);
        if !report.exhaustive_and_clean() {
            failed = true;
            if let Some(ce) = &report.counterexample {
                println!("{}", format_trace(&ce.trace));
            }
        }
    }
    if failed {
        println!("protocol-check: FAILED");
        ExitCode::FAILURE
    } else {
        println!("protocol-check: all protocols explored clean");
        ExitCode::SUCCESS
    }
}

fn run_matrix() -> ExitCode {
    let _g = suite::serial_guard();
    let mut mismatches = 0u32;
    let mut caught = 0u32;
    println!("{:<34} {:<9} {:<16} verdict", "site", "current", "scenario");
    for spec in suite::matrix() {
        match suite::run_weakened(&spec) {
            None => {
                let ok = spec.expect == suite::Expect::Minimal;
                if !ok {
                    mismatches += 1;
                }
                println!(
                    "{:<34} {:<9} {:<16} minimal (nothing weaker){}",
                    spec.site,
                    format!("{:?}", spec.current),
                    spec.scenario,
                    if ok { "" } else { "  <-- EXPECTED CAUGHT" }
                );
            }
            Some(report) => {
                let was_caught = report.counterexample.is_some();
                caught += u32::from(was_caught);
                let ok = was_caught == (spec.expect == suite::Expect::Caught);
                if !ok {
                    mismatches += 1;
                }
                let verdict = match (was_caught, &report.counterexample) {
                    (true, Some(ce)) => format!(
                        "caught [{}] after {} executions",
                        ce.kind.name(),
                        report.executions
                    ),
                    _ => format!(
                        "clean ({} interleavings{})",
                        report.executions,
                        if report.hit_exec_bound {
                            ", BOUND HIT"
                        } else {
                            ""
                        }
                    ),
                };
                println!(
                    "{:<34} {:<9} {:<16} {}{}",
                    spec.site,
                    format!("{:?}", spec.current),
                    spec.scenario,
                    verdict,
                    if ok { "" } else { "  <-- EXPECTATION MISMATCH" }
                );
            }
        }
    }
    println!();
    for (site, demotion, why) in suite::demoted_sites() {
        println!("demoted {site}: {demotion} — {why}");
    }
    println!();
    if mismatches == 0 {
        println!("matrix: every ordering minimal ({caught} weakened mutants caught)");
        ExitCode::SUCCESS
    } else {
        println!("matrix: {mismatches} expectation mismatch(es)");
        ExitCode::FAILURE
    }
}

fn run_mutant(site_name: &str, with_trace: bool) -> ExitCode {
    let _g = suite::serial_guard();
    let Some(spec) = suite::find_site(site_name) else {
        eprintln!("protocol-check: unknown site {site_name:?} (see --list-sites)");
        return ExitCode::from(2);
    };
    let Some(report) = suite::run_weakened(&spec) else {
        eprintln!(
            "protocol-check: site {site_name} already uses the weakest ordering ({:?})",
            spec.current
        );
        return ExitCode::from(2);
    };
    println!("{}", report.summary());
    match report.counterexample {
        Some(ce) => {
            println!(
                "mutant {site_name} ({:?} weakened one step) caught: {}",
                spec.current, ce.message
            );
            if with_trace {
                println!("{}", format_trace(&ce.trace));
                // A counterexample must be deterministic: replaying its
                // recorded schedule reproduces the same failure kind.
                let replay = suite::replay_weakened(&spec, &ce.schedule);
                let replayed = replay
                    .counterexample
                    .expect("schedule replay must reproduce the counterexample");
                assert_eq!(
                    replayed.kind.name(),
                    ce.kind.name(),
                    "replay diverged from the recorded failure"
                );
                println!("replay: schedule reproduces [{}]", replayed.kind.name());
            }
            ExitCode::FAILURE
        }
        None => {
            println!(
                "mutant {site_name} NOT caught — weakened run explored clean{}",
                if report.hit_exec_bound {
                    " (EXEC BOUND HIT)"
                } else {
                    ""
                }
            );
            ExitCode::SUCCESS
        }
    }
}

fn list_sites() -> ExitCode {
    println!(
        "{:<34} {:<9} {:<7} {:<16} expect",
        "site", "current", "class", "scenario"
    );
    for spec in suite::matrix() {
        println!(
            "{:<34} {:<9} {:<7} {:<16} {:?}",
            spec.site,
            format!("{:?}", spec.current),
            format!("{:?}", spec.class),
            spec.scenario,
            spec.expect
        );
    }
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.iter().map(String::as_str).collect::<Vec<_>>()[..] {
        [] => run_suite(None),
        ["--proto", name] => run_suite(Some(name)),
        ["--matrix"] => run_matrix(),
        ["--mutant", site] => run_mutant(site, false),
        ["--trace", site] => run_mutant(site, true),
        ["--list-sites"] => list_sites(),
        _ => {
            eprintln!(
                "usage: protocol-check [--matrix | --mutant SITE | --trace SITE | --list-sites]"
            );
            ExitCode::from(2)
        }
    }
}
