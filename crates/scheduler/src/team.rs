//! Work teams: disjoint groups of workers with private barriers.
//!
//! Under the islands-of-cores approach every island (processor) runs one
//! *work team* of cores. Teams compute independently within a time step —
//! synchronizing only among themselves between stages — and all teams
//! join a global synchronization once per time step. [`TeamSpec`]
//! describes the grouping; [`WorkerPool::run_teams`] executes a closure
//! with a [`TeamCtx`] exposing the team-local barrier.

use crate::barrier::{BarrierScope, SenseBarrier};
use crate::pool::{WorkerCtx, WorkerPool};
use std::error::Error;
use std::fmt;
use std::sync::Arc;

/// A partition of the pool's workers into disjoint teams.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TeamSpec {
    members: Vec<Vec<usize>>,
}

/// Error building a [`TeamSpec`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum BuildTeamsError {
    /// A worker appears in two teams (or twice in one team).
    DuplicateWorker {
        /// The repeated worker index.
        worker: usize,
    },
    /// A team has no members.
    EmptyTeam {
        /// Index of the empty team.
        team: usize,
    },
    /// No teams were given.
    NoTeams,
}

impl fmt::Display for BuildTeamsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BuildTeamsError::DuplicateWorker { worker } => {
                write!(f, "worker {worker} belongs to more than one team")
            }
            BuildTeamsError::EmptyTeam { team } => write!(f, "team {team} has no members"),
            BuildTeamsError::NoTeams => write!(f, "no teams specified"),
        }
    }
}

impl Error for BuildTeamsError {}

impl TeamSpec {
    /// Builds a spec from explicit member lists.
    ///
    /// # Errors
    ///
    /// Rejects empty specs, empty teams and workers appearing twice.
    pub fn new(members: Vec<Vec<usize>>) -> Result<Self, BuildTeamsError> {
        if members.is_empty() {
            return Err(BuildTeamsError::NoTeams);
        }
        let mut seen = std::collections::HashSet::new();
        for (t, team) in members.iter().enumerate() {
            if team.is_empty() {
                return Err(BuildTeamsError::EmptyTeam { team: t });
            }
            for &w in team {
                if !seen.insert(w) {
                    return Err(BuildTeamsError::DuplicateWorker { worker: w });
                }
            }
        }
        Ok(TeamSpec { members })
    }

    /// Splits `workers` consecutive workers into `teams` equal teams
    /// (worker `w` joins team `w / (workers / teams)`), the layout used
    /// when one island spans one processor of consecutive cores.
    ///
    /// # Panics
    ///
    /// Panics if `teams == 0` or `workers` is not divisible by `teams`.
    pub fn even(workers: usize, teams: usize) -> Self {
        assert!(teams > 0, "need at least one team");
        assert_eq!(
            workers % teams,
            0,
            "workers ({workers}) must divide evenly into {teams} teams"
        );
        let per = workers / teams;
        let members = (0..teams)
            .map(|t| (t * per..(t + 1) * per).collect())
            .collect();
        TeamSpec { members }
    }

    /// Number of teams.
    pub fn team_count(&self) -> usize {
        self.members.len()
    }

    /// Members of team `t`.
    pub fn members(&self, t: usize) -> &[usize] {
        &self.members[t]
    }

    /// Total workers across all teams.
    pub fn worker_count(&self) -> usize {
        self.members.iter().map(Vec::len).sum()
    }

    /// Sizes of all teams, in team order — the schedule *shape* that
    /// plan-time analyses (e.g. the `islands-analysis` disjointness
    /// checker) consume to reproduce how each team splits its stage
    /// sweeps among ranks.
    pub fn team_sizes(&self) -> Vec<usize> {
        self.members.iter().map(Vec::len).collect()
    }

    /// The `(team, rank)` of `worker`, if it belongs to any team.
    pub fn placement(&self, worker: usize) -> Option<(usize, usize)> {
        for (t, team) in self.members.iter().enumerate() {
            if let Some(rank) = team.iter().position(|&w| w == worker) {
                return Some((t, rank));
            }
        }
        None
    }
}

/// Context handed to a team closure on each participating worker.
#[derive(Clone)]
pub struct TeamCtx {
    /// The underlying worker context.
    pub worker: WorkerCtx,
    /// Team index.
    pub team: usize,
    /// This worker's rank within the team.
    pub rank: usize,
    /// Team size.
    pub size: usize,
    barrier: Arc<SenseBarrier>,
    global: Arc<SenseBarrier>,
}

impl TeamCtx {
    /// Team-local barrier: blocks until all members of this team arrive.
    /// Returns the serial flag (exactly one member sees `true`).
    pub fn team_barrier(&self) -> bool {
        self.barrier.wait()
    }

    /// Global barrier across *all* teams of this `run_teams` call — the
    /// once-per-time-step synchronization of the islands-of-cores
    /// approach, available *inside* the closure so multi-step loops need
    /// not pay a full pool dispatch per step. Returns the serial flag
    /// (exactly one participant, in exactly one team, sees `true`).
    pub fn global_barrier(&self) -> bool {
        self.global.wait()
    }
}

impl fmt::Debug for TeamCtx {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "TeamCtx {{ team: {}, rank: {}/{}, worker: {} }}",
            self.team, self.rank, self.size, self.worker.worker
        )
    }
}

impl WorkerPool {
    /// Runs `f` on every worker that belongs to a team in `spec`, giving
    /// each a [`TeamCtx`]. Workers not in any team idle for this call.
    /// Returns when all participants have finished (this completion is
    /// the once-per-time-step global synchronization of the
    /// islands-of-cores approach).
    ///
    /// # Panics
    ///
    /// Panics if `spec` references a worker outside the pool, and
    /// propagates panics raised by `f`.
    pub fn run_teams<F>(&self, spec: &TeamSpec, f: F)
    where
        F: Fn(TeamCtx) + Sync,
    {
        for t in 0..spec.team_count() {
            for &w in spec.members(t) {
                assert!(
                    w < self.len(),
                    "team member {w} outside pool of {}",
                    self.len()
                );
            }
        }
        // Budget the barriers for the *whole* dispatch, not one team:
        // when the spec oversubscribes the machine, every waiter backs
        // off to an almost-immediate park instead of spinning on the
        // CPU its straggler needs.
        let total = spec.worker_count();
        let barriers: Vec<Arc<SenseBarrier>> = (0..spec.team_count())
            .map(|t| {
                Arc::new(SenseBarrier::scoped_for_load(
                    spec.members(t).len(),
                    BarrierScope::Team,
                    total,
                ))
            })
            .collect();
        let global = Arc::new(SenseBarrier::scoped_for_load(
            total,
            BarrierScope::Global,
            total,
        ));
        self.broadcast(|wctx| {
            if let Some((team, rank)) = spec.placement(wctx.worker) {
                f(TeamCtx {
                    worker: wctx,
                    team,
                    rank,
                    size: spec.members(team).len(),
                    barrier: Arc::clone(&barriers[team]),
                    global: Arc::clone(&global),
                });
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn even_spec_layout() {
        let s = TeamSpec::even(8, 2);
        assert_eq!(s.team_count(), 2);
        assert_eq!(s.members(0), &[0, 1, 2, 3]);
        assert_eq!(s.members(1), &[4, 5, 6, 7]);
        assert_eq!(s.worker_count(), 8);
        assert_eq!(s.team_sizes(), vec![4, 4]);
        assert_eq!(s.placement(5), Some((1, 1)));
        assert_eq!(s.placement(9), None);
    }

    #[test]
    fn team_sizes_follow_member_lists() {
        let s = TeamSpec::new(vec![vec![0], vec![1, 2, 3], vec![4, 5]]).unwrap();
        assert_eq!(s.team_sizes(), vec![1, 3, 2]);
    }

    #[test]
    fn new_rejects_bad_specs() {
        assert_eq!(TeamSpec::new(vec![]), Err(BuildTeamsError::NoTeams));
        assert_eq!(
            TeamSpec::new(vec![vec![0], vec![]]),
            Err(BuildTeamsError::EmptyTeam { team: 1 })
        );
        assert_eq!(
            TeamSpec::new(vec![vec![0, 1], vec![1]]),
            Err(BuildTeamsError::DuplicateWorker { worker: 1 })
        );
    }

    #[test]
    #[should_panic]
    fn even_requires_divisibility() {
        let _ = TeamSpec::even(7, 2);
    }

    #[test]
    fn run_teams_assigns_ranks() {
        let pool = WorkerPool::new(6);
        let spec = TeamSpec::even(6, 3);
        let hits = AtomicUsize::new(0);
        pool.run_teams(&spec, |ctx| {
            assert_eq!(ctx.size, 2);
            assert_eq!(ctx.team, ctx.worker.worker / 2);
            assert_eq!(ctx.rank, ctx.worker.worker % 2);
            hits.fetch_add(1, Ordering::SeqCst);
        });
        assert_eq!(hits.load(Ordering::SeqCst), 6);
    }

    #[test]
    fn team_barriers_are_independent() {
        // Team 0 iterates its barrier many times while team 1 does not
        // participate at all — if barriers were shared this would hang.
        let pool = WorkerPool::new(4);
        let spec = TeamSpec::new(vec![vec![0, 1], vec![2, 3]]).unwrap();
        let serials = AtomicUsize::new(0);
        pool.run_teams(&spec, |ctx| {
            if ctx.team == 0 {
                for _ in 0..100 {
                    if ctx.team_barrier() {
                        serials.fetch_add(1, Ordering::SeqCst);
                    }
                }
            }
        });
        assert_eq!(serials.load(Ordering::SeqCst), 100);
    }

    #[test]
    fn global_barrier_spans_all_teams() {
        // Two teams of two run a "step loop": every participant bumps a
        // counter, then crosses the global barrier; afterwards each must
        // observe all four increments of that step — a per-team barrier
        // could not provide that edge.
        let pool = WorkerPool::new(4);
        let spec = TeamSpec::even(4, 2);
        let counter = AtomicUsize::new(0);
        let serials = AtomicUsize::new(0);
        let steps = 50;
        pool.run_teams(&spec, |ctx| {
            for s in 0..steps {
                counter.fetch_add(1, Ordering::SeqCst);
                if ctx.global_barrier() {
                    serials.fetch_add(1, Ordering::SeqCst);
                }
                let c = counter.load(Ordering::SeqCst);
                assert!(c >= 4 * (s + 1), "step {s}: saw {c}");
                ctx.global_barrier();
            }
        });
        assert_eq!(counter.load(Ordering::SeqCst), 4 * steps);
        // Exactly one serial participant per step, across all teams.
        assert_eq!(serials.load(Ordering::SeqCst), steps);
    }

    #[test]
    fn partial_team_spec_leaves_other_workers_idle() {
        let pool = WorkerPool::new(4);
        let spec = TeamSpec::new(vec![vec![1, 3]]).unwrap();
        let hits = AtomicUsize::new(0);
        pool.run_teams(&spec, |ctx| {
            assert!(ctx.worker.worker == 1 || ctx.worker.worker == 3);
            hits.fetch_add(1, Ordering::SeqCst);
        });
        assert_eq!(hits.load(Ordering::SeqCst), 2);
    }
}
