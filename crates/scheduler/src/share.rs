//! Shared-mutable cells for disjoint-region parallel writes.
//!
//! Stencil executors split one output array among the ranks of a team;
//! every rank writes a disjoint region. That access pattern is safe but
//! inexpressible through `&mut` aliasing rules without either splitting
//! the allocation (impossible for interleaved 3-D regions) or interior
//! mutability. [`DisjointCell`] is the minimal such cell: it hands out
//! `&mut T` through an `unsafe` method whose contract is *caller-proved
//! disjointness in time or space*.

use std::cell::UnsafeCell;

/// A `Sync` cell granting unsynchronized mutable access.
///
/// Used by the executors to let team ranks write disjoint regions of one
/// array concurrently (e.g. `stencil_engine::Array3`).
///
/// # Examples
///
/// ```
/// use work_scheduler::{DisjointCell, WorkerPool};
/// let pool = WorkerPool::new(4);
/// let cell = DisjointCell::new(vec![0_u64; 4]);
/// pool.broadcast(|ctx| {
///     // SAFETY: each worker writes only index `ctx.worker`.
///     let v = unsafe { cell.get_mut() };
///     v[ctx.worker] = ctx.worker as u64 + 1;
/// });
/// assert_eq!(cell.into_inner(), vec![1, 2, 3, 4]);
/// ```
#[derive(Debug)]
pub struct DisjointCell<T>(UnsafeCell<T>);

// SAFETY: `DisjointCell` only adds the *capability* for shared mutation;
// every dereference goes through the `unsafe` methods below, whose
// contracts require the caller to rule out data races. `T: Send` is
// required because the value is effectively accessed from many threads.
unsafe impl<T: Send> Sync for DisjointCell<T> {}

impl<T> DisjointCell<T> {
    /// Wraps a value.
    pub fn new(value: T) -> Self {
        DisjointCell(UnsafeCell::new(value))
    }

    /// Unwraps the value.
    pub fn into_inner(self) -> T {
        self.0.into_inner()
    }

    /// Returns a mutable reference without synchronization.
    ///
    /// # Safety
    ///
    /// Callers must guarantee that all concurrently existing references
    /// obtained from this cell access disjoint parts of `T` (e.g. each
    /// thread writes a distinct sub-region of an array), or that accesses
    /// are separated by a happens-before edge (e.g. a barrier).
    #[allow(clippy::mut_from_ref)]
    pub unsafe fn get_mut(&self) -> &mut T {
        // SAFETY: upheld by the caller per this method's contract.
        unsafe { &mut *self.0.get() }
    }

    /// Returns a shared reference without synchronization.
    ///
    /// # Safety
    ///
    /// Callers must guarantee no concurrent mutable access overlaps the
    /// data read through this reference (disjointness or a barrier).
    pub unsafe fn get_ref(&self) -> &T {
        // SAFETY: upheld by the caller per this method's contract.
        unsafe { &*self.0.get() }
    }

    /// Mutable access through an exclusive borrow — always safe.
    pub fn get_mut_exclusive(&mut self) -> &mut T {
        self.0.get_mut()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pool::WorkerPool;

    #[test]
    fn disjoint_parallel_writes() {
        let pool = WorkerPool::new(8);
        let n = 64;
        let cell = DisjointCell::new(vec![0_usize; n * 8]);
        pool.broadcast(|ctx| {
            // SAFETY: worker w writes slice [w*n, (w+1)*n).
            let v = unsafe { cell.get_mut() };
            for x in &mut v[ctx.worker * n..(ctx.worker + 1) * n] {
                *x = ctx.worker + 1;
            }
        });
        let v = cell.into_inner();
        for w in 0..8 {
            assert!(v[w * n..(w + 1) * n].iter().all(|&x| x == w + 1));
        }
    }

    #[test]
    fn exclusive_access_is_safe_api() {
        let mut cell = DisjointCell::new(5_i32);
        *cell.get_mut_exclusive() += 1;
        assert_eq!(cell.into_inner(), 6);
    }

    #[test]
    fn read_after_broadcast_sees_writes() {
        let pool = WorkerPool::new(2);
        let cell = DisjointCell::new([0_u8; 2]);
        pool.broadcast(|ctx| {
            // SAFETY: disjoint indices.
            let arr = unsafe { cell.get_mut() };
            arr[ctx.worker] = 9;
        });
        // SAFETY: broadcast completion is a happens-before edge.
        assert_eq!(unsafe { *cell.get_ref() }, [9, 9]);
    }
}
