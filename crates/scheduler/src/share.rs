//! Shared-mutable cells for disjoint-region parallel writes.
//!
//! Stencil executors split one output array among the ranks of a team;
//! every rank writes a disjoint region. That access pattern is safe but
//! inexpressible through `&mut` aliasing rules without either splitting
//! the allocation (impossible for interleaved 3-D regions) or interior
//! mutability. [`DisjointCell`] is the minimal such cell: it hands out
//! `&mut T` through an `unsafe` method whose contract is *caller-proved
//! disjointness in time or space*.
//!
//! Debug builds additionally offer *borrow tracking*: callers announce
//! each access through [`DisjointCell::track_read`] /
//! [`DisjointCell::track_write`], and a reader observed concurrently
//! with a writer panics loudly. The counters are compiled out of
//! release builds, so tracking costs nothing where performance matters.
//! (Write–write conflicts are intentionally *not* flagged here — many
//! concurrent writers over disjoint regions are the cell's purpose; the
//! region-level claim table in the `mpdata` executors checks those.)

use std::cell::UnsafeCell;
#[cfg(debug_assertions)]
use std::sync::atomic::{AtomicU32, Ordering};

/// A `Sync` cell granting unsynchronized mutable access.
///
/// Used by the executors to let team ranks write disjoint regions of one
/// array concurrently (e.g. `stencil_engine::Array3`).
///
/// # Examples
///
/// ```
/// use work_scheduler::{DisjointCell, WorkerPool};
/// let pool = WorkerPool::new(4);
/// let cell = DisjointCell::new(vec![0_u64; 4]);
/// pool.broadcast(|ctx| {
///     let _t = cell.track_write(); // debug-only overlap guard
///     // SAFETY: each worker writes only index `ctx.worker`.
///     let v = unsafe { cell.get_mut() };
///     v[ctx.worker] = ctx.worker as u64 + 1;
/// });
/// assert_eq!(cell.into_inner(), vec![1, 2, 3, 4]);
/// ```
#[derive(Debug)]
pub struct DisjointCell<T> {
    value: UnsafeCell<T>,
    #[cfg(debug_assertions)]
    readers: AtomicU32,
    #[cfg(debug_assertions)]
    writers: AtomicU32,
}

// SAFETY: `DisjointCell` only adds the *capability* for shared mutation;
// every dereference goes through the `unsafe` methods below, whose
// contracts require the caller to rule out data races. `T: Send` is
// required because the value is effectively accessed from many threads.
unsafe impl<T: Send> Sync for DisjointCell<T> {}

impl<T> DisjointCell<T> {
    /// Wraps a value.
    pub fn new(value: T) -> Self {
        DisjointCell {
            value: UnsafeCell::new(value),
            #[cfg(debug_assertions)]
            readers: AtomicU32::new(0),
            #[cfg(debug_assertions)]
            writers: AtomicU32::new(0),
        }
    }

    /// Unwraps the value.
    pub fn into_inner(self) -> T {
        self.value.into_inner()
    }

    /// Returns a mutable reference without synchronization.
    ///
    /// # Safety
    ///
    /// Callers must guarantee that all concurrently existing references
    /// obtained from this cell access disjoint parts of `T` (e.g. each
    /// thread writes a distinct sub-region of an array), or that accesses
    /// are separated by a happens-before edge (e.g. a barrier).
    #[allow(clippy::mut_from_ref)]
    pub unsafe fn get_mut(&self) -> &mut T {
        // SAFETY: upheld by the caller per this method's contract.
        unsafe { &mut *self.value.get() }
    }

    /// Returns a shared reference without synchronization.
    ///
    /// # Safety
    ///
    /// Callers must guarantee no concurrent mutable access overlaps the
    /// data read through this reference (disjointness or a barrier).
    pub unsafe fn get_ref(&self) -> &T {
        // SAFETY: upheld by the caller per this method's contract.
        unsafe { &*self.value.get() }
    }

    /// Mutable access through an exclusive borrow — always safe.
    pub fn get_mut_exclusive(&mut self) -> &mut T {
        self.value.get_mut()
    }

    /// Announces a read of this cell for the debug overlap guard. Hold
    /// the returned tracker for as long as the reference from
    /// [`DisjointCell::get_ref`] lives.
    ///
    /// # Panics
    ///
    /// Panics (debug builds only) if a writer is currently tracked: a
    /// concurrent read–write pair can never be disjoint "in time", so
    /// the caller's safety argument is broken.
    #[inline]
    pub fn track_read(&self) -> AccessTracker<'_, T> {
        #[cfg(debug_assertions)]
        {
            // ordering: SeqCst — the inc-then-check-other-counter pair
            // is the store-buffering shape; both sides SC guarantees a
            // racing read/write pair trips at least one of the two
            // asserts. This is a debug-only guard rail — never a hot
            // path — so strength is free.
            self.readers.fetch_add(1, Ordering::SeqCst);
            // ordering: SeqCst — load half of the pair above.
            assert!(
                self.writers.load(Ordering::SeqCst) == 0,
                "DisjointCell overlap: read tracked while a writer is active \
                 (a barrier or join must separate them)"
            );
        }
        AccessTracker {
            cell: self,
            write: false,
        }
    }

    /// Announces a write to this cell for the debug overlap guard. Hold
    /// the returned tracker for as long as the reference from
    /// [`DisjointCell::get_mut`] lives. Multiple concurrent writers are
    /// allowed — disjoint-region writes are the cell's purpose.
    ///
    /// # Panics
    ///
    /// Panics (debug builds only) if a reader is currently tracked.
    #[inline]
    pub fn track_write(&self) -> AccessTracker<'_, T> {
        #[cfg(debug_assertions)]
        {
            // ordering: SeqCst — mirror of `track_read`: SC on both
            // counters makes the overlap guard sound (debug-only).
            self.writers.fetch_add(1, Ordering::SeqCst);
            // ordering: SeqCst — load half of the pair above.
            assert!(
                self.readers.load(Ordering::SeqCst) == 0,
                "DisjointCell overlap: write tracked while a reader is active \
                 (a barrier or join must separate them)"
            );
        }
        AccessTracker {
            cell: self,
            write: true,
        }
    }
}

/// RAII token for one tracked access to a [`DisjointCell`] (see
/// [`DisjointCell::track_read`]). Dropping it retires the access. In
/// release builds the counters do not exist and this is inert.
#[derive(Debug)]
pub struct AccessTracker<'a, T> {
    cell: &'a DisjointCell<T>,
    write: bool,
}

impl<T> Drop for AccessTracker<'_, T> {
    fn drop(&mut self) {
        #[cfg(debug_assertions)]
        {
            let ctr = if self.write {
                &self.cell.writers
            } else {
                &self.cell.readers
            };
            // ordering: SeqCst — retire stays in the same total order
            // as the guard's inc/check pair (debug-only).
            ctr.fetch_sub(1, Ordering::SeqCst);
        }
        #[cfg(not(debug_assertions))]
        {
            let _ = (self.cell, self.write);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pool::WorkerPool;

    #[test]
    fn disjoint_parallel_writes() {
        let pool = WorkerPool::new(8);
        let n = 64;
        let cell = DisjointCell::new(vec![0_usize; n * 8]);
        pool.broadcast(|ctx| {
            let _t = cell.track_write();
            // SAFETY: worker w writes slice [w*n, (w+1)*n).
            let v = unsafe { cell.get_mut() };
            for x in &mut v[ctx.worker * n..(ctx.worker + 1) * n] {
                *x = ctx.worker + 1;
            }
        });
        let v = cell.into_inner();
        for w in 0..8 {
            assert!(v[w * n..(w + 1) * n].iter().all(|&x| x == w + 1));
        }
    }

    #[test]
    fn exclusive_access_is_safe_api() {
        let mut cell = DisjointCell::new(5_i32);
        *cell.get_mut_exclusive() += 1;
        assert_eq!(cell.into_inner(), 6);
    }

    #[test]
    fn read_after_broadcast_sees_writes() {
        let pool = WorkerPool::new(2);
        let cell = DisjointCell::new([0_u8; 2]);
        pool.broadcast(|ctx| {
            let _t = cell.track_write();
            // SAFETY: disjoint indices.
            let arr = unsafe { cell.get_mut() };
            arr[ctx.worker] = 9;
        });
        let _t = cell.track_read();
        // SAFETY: broadcast completion is a happens-before edge.
        assert_eq!(unsafe { *cell.get_ref() }, [9, 9]);
    }

    #[test]
    fn concurrent_reads_are_fine() {
        let cell = DisjointCell::new(1_u8);
        let _a = cell.track_read();
        let _b = cell.track_read();
    }

    #[test]
    fn sequential_read_then_write_is_fine() {
        let cell = DisjointCell::new(1_u8);
        {
            let _r = cell.track_read();
        }
        let _w = cell.track_write();
        drop(_w);
        let _r2 = cell.track_read();
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "DisjointCell overlap")]
    fn read_during_write_panics() {
        let cell = DisjointCell::new(0_u32);
        let _w = cell.track_write();
        let _r = cell.track_read();
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "DisjointCell overlap")]
    fn write_during_read_panics() {
        let cell = DisjointCell::new(0_u32);
        let _r = cell.track_read();
        let _w = cell.track_write();
    }
}
