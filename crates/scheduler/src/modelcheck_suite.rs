//! The model-checked protocol suite: the scenarios the bounded
//! exhaustive-interleaving checker explores, the ordering-minimality
//! matrix over the runtime's named `Ordering::` sites, and the
//! machinery behind the `protocol-check` binary.
//!
//! Only compiled under `--features model` (see `sync.rs` for the seam).
//! Every scenario constructs the *production* protocol objects —
//! [`SenseBarrier`], [`ChunkQueue`], the pool's completion `Latch`, the
//! trace ring — and drives their real methods from 2–3 model threads;
//! the checker then enumerates every interleaving (and every legal
//! stale-read choice) within the documented bounds.
//!
//! # Bounds
//!
//! All scenarios run with [`Config::default`] bounds — full
//! exhaustiveness (no preemption bound), one injected spurious wakeup
//! per execution, 2 000 operations per execution — except where a
//! scenario's `bounds_note` says otherwise. Model builds collapse the
//! barrier's spin/yield budgets to one round each (`barrier.rs`), so a
//! "waiter parks" outcome is a short path, not 320 loop iterations.
//!
//! # The minimality matrix
//!
//! [`matrix`] lists every named site of the four checked protocols with
//! its source ordering and the expected verdict of running the suite
//! with that one site weakened one step ([`one_step_weaker`]):
//!
//! * [`Expect::Caught`] — the weakened run must produce a
//!   counterexample: the ordering is load-bearing, and the weakened
//!   variant doubles as a seeded mutant for CI.
//! * [`Expect::Minimal`] — the site already uses the weakest ordering
//!   its operation class admits; there is nothing to weaken.
//!
//! Sites that were *demoted* to their current ordering with the
//! checker's blessing (the suite runs clean at the demoted strength,
//! plus an analytic argument in the site's `// ordering:` comment) are
//! listed by [`demoted_sites`].

use crate::pool::Latch;
use crate::{ChunkQueue, SenseBarrier};
use islands_modelcheck::site::{self, one_step_weaker, OpClass};
use islands_modelcheck::{Checker, Config, Decision, ModelCell, Report, Scenario};
use islands_trace::model_support::ModelRing;
use islands_trace::{Event, SpanKind};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};

/// One checked protocol scenario.
pub struct Proto {
    /// Scenario name (stable; used by `--mutant` diagnostics).
    pub name: &'static str,
    /// Builds a fresh scenario (re-invoked once per execution).
    pub build: fn() -> Scenario,
    /// Exploration bounds for this scenario.
    pub cfg: Config,
    /// Human-readable statement of what is covered and at what bounds.
    pub bounds_note: &'static str,
}

/// Global lock serializing everything that touches the site-override
/// map (the matrix, `--mutant` runs) against plain suite runs. The
/// override map is process-global, so concurrent tests must hold this.
pub fn serial_guard() -> MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

// ---------------------------------------------------------------------
// Scenarios
// ---------------------------------------------------------------------

/// Two threads cross one barrier episode; thread 0 hands a plain
/// (non-atomic) payload across it. Checks: exactly one serial flag, the
/// payload read is data-race-free and sees the written value, no lost
/// wakeup on the park path, survival of spurious wakeups.
fn barrier_handoff() -> Scenario {
    let mut s = Scenario::new("barrier-handoff");
    let b = Arc::new(SenseBarrier::new(2));
    let cell = Arc::new(ModelCell::with_label(0usize, "test.payload"));
    let serials = Arc::new(AtomicUsize::new(0));
    {
        let (b, cell, serials) = (Arc::clone(&b), Arc::clone(&cell), Arc::clone(&serials));
        s.thread(move || {
            cell.set(42);
            if b.wait() {
                serials.fetch_add(1, Ordering::SeqCst);
            }
        });
    }
    {
        let (b, cell, serials) = (Arc::clone(&b), Arc::clone(&cell), Arc::clone(&serials));
        s.thread(move || {
            if b.wait() {
                serials.fetch_add(1, Ordering::SeqCst);
            }
            assert_eq!(cell.get(), 42, "barrier handoff: stale payload");
        });
    }
    s.after(move || {
        assert_eq!(
            serials.load(Ordering::SeqCst),
            1,
            "exactly one serial participant"
        );
    });
    s
}

/// Two threads cross the *same* barrier twice. Checks the
/// sense-reversal reuse protocol: the counter reset and sense prime
/// must keep episodes separate (exactly one serial per episode), which
/// is what blesses the `barrier.count-reset-store` demotion.
fn barrier_reuse() -> Scenario {
    let mut s = Scenario::new("barrier-reuse");
    let b = Arc::new(SenseBarrier::new(2));
    let serials = Arc::new([AtomicUsize::new(0), AtomicUsize::new(0)]);
    for _ in 0..2 {
        let (b, serials) = (Arc::clone(&b), Arc::clone(&serials));
        s.thread(move || {
            for episode in 0..2 {
                if b.wait() {
                    serials[episode].fetch_add(1, Ordering::SeqCst);
                }
            }
        });
    }
    s.after(move || {
        for (episode, count) in serials.iter().enumerate() {
            assert_eq!(
                count.load(Ordering::SeqCst),
                1,
                "episode {episode}: serial count"
            );
        }
    });
    s
}

/// Two threads drain a three-chunk queue, one of them via a two-chunk
/// batch claim. Checks: every chunk claimed exactly once, none skipped,
/// claims past the end stay `None`.
fn chunkq_claims() -> Scenario {
    let mut s = Scenario::new("chunkq-claims");
    let q = Arc::new(ChunkQueue::new(3));
    let claimed: Arc<Vec<AtomicUsize>> = Arc::new((0..3).map(|_| AtomicUsize::new(0)).collect());
    {
        let (q, claimed) = (Arc::clone(&q), Arc::clone(&claimed));
        s.thread(move || {
            while let Some(c) = q.claim() {
                claimed[c].fetch_add(1, Ordering::SeqCst);
            }
        });
    }
    {
        let (q, claimed) = (Arc::clone(&q), Arc::clone(&claimed));
        s.thread(move || {
            if let Some(r) = q.claim_batch(2) {
                for c in r {
                    claimed[c].fetch_add(1, Ordering::SeqCst);
                }
            }
            while let Some(c) = q.claim() {
                claimed[c].fetch_add(1, Ordering::SeqCst);
            }
        });
    }
    s.after(move || {
        for (c, count) in claimed.iter().enumerate() {
            assert_eq!(count.load(Ordering::SeqCst), 1, "chunk {c}: claim count");
        }
    });
    s
}

/// The barrier-fenced reuse episode the executors run every epoch:
/// drain, barrier, serial resets, barrier, drain again. Checks that the
/// `Relaxed` reset is fully fenced by the barrier — no chunk of the
/// second epoch is claimed twice or skipped.
fn chunkq_reuse() -> Scenario {
    let mut s = Scenario::new("chunkq-reuse");
    let q = Arc::new(ChunkQueue::new(1));
    let b = Arc::new(SenseBarrier::new(2));
    let claimed: Arc<Vec<AtomicUsize>> = Arc::new((0..2).map(|_| AtomicUsize::new(0)).collect());
    for _ in 0..2 {
        let (q, b, claimed) = (Arc::clone(&q), Arc::clone(&b), Arc::clone(&claimed));
        s.thread(move || {
            for epoch in 0..2 {
                while let Some(c) = q.claim() {
                    claimed[epoch + c].fetch_add(1, Ordering::SeqCst);
                }
                if b.wait() {
                    q.reset();
                }
                b.wait();
            }
        });
    }
    s.after(move || {
        for (i, count) in claimed.iter().enumerate() {
            assert_eq!(count.load(Ordering::SeqCst), 1, "epoch {i}: claim count");
        }
    });
    s
}

/// The pool's completion latch: two workers arrive (one stashing a
/// panic payload), the caller waits. Checks: the caller always wakes
/// (no lost wakeup, spurious wakeups survived) and receives the first
/// stashed payload.
fn latch_completion() -> Scenario {
    let mut s = Scenario::new("latch-completion");
    let latch = Arc::new(Latch::new(2));
    let delivered = Arc::new(AtomicUsize::new(0));
    {
        let latch = Arc::clone(&latch);
        s.thread(move || latch.arrive(Some(Box::new("boom"))));
    }
    {
        let latch = Arc::clone(&latch);
        s.thread(move || latch.arrive(None));
    }
    {
        let (latch, delivered) = (Arc::clone(&latch), Arc::clone(&delivered));
        s.thread(move || {
            let payload = latch.wait();
            let got = payload.expect("a panic payload was stashed");
            assert_eq!(
                got.downcast_ref::<&str>(),
                Some(&"boom"),
                "latch payload mangled"
            );
            delivered.fetch_add(1, Ordering::SeqCst);
        });
    }
    s.after(move || {
        assert_eq!(delivered.load(Ordering::SeqCst), 1, "caller never woke");
    });
    s
}

/// A ring event whose every varying word is a distinct nonzero
/// function of `tag`: any torn mix of two pushes' words, any stale
/// word, and any never-written (zero) word changes the decoded event,
/// so exact-equality assertions detect every corruption the seqlock
/// protocol is supposed to exclude.
fn ring_ev(tag: u64) -> Event {
    Event {
        kind: SpanKind::Kernel,
        start_ns: tag * 1000 + 1,
        dur_ns: tag * 1000 + 2,
        aux: [tag * 1000 + 3, tag * 1000 + 4, tag * 1000 + 5],
        island: tag as u32,
        rank: 100 + tag as u32,
        step: tag as u32,
        stage: 10 + tag as u16,
        block: 20 + tag as u16,
    }
}

/// The trace ring's concurrent publish path, no wrap: a producer
/// pushes two events into a two-slot ring while a collector drains
/// from cursor 0. Checks: the collector never reports an unpublished
/// slot (the publish-store/window-load edge), never a torn or stale
/// event (the per-slot sequence validation), and the events it does
/// see are exactly the pushed prefix, in order.
fn ring_publish() -> Scenario {
    let mut s = Scenario::new("ring-publish");
    let ring = Arc::new(ModelRing::new(2, 7));
    {
        let ring = Arc::clone(&ring);
        s.thread(move || {
            ring.push(ring_ev(1));
            ring.push(ring_ev(2));
        });
    }
    {
        let ring = Arc::clone(&ring);
        s.thread(move || {
            let (events, stats) = ring.collect(0);
            assert_eq!(
                stats.unpublished, 0,
                "slot behind the published window not committed"
            );
            assert_eq!(
                stats.overwritten, 0,
                "no wrap in a 2-slot ring with 2 pushes"
            );
            assert_eq!(
                events.len() as u64,
                stats.next,
                "events are the full window"
            );
            for (n, t) in events.iter().enumerate() {
                assert_eq!(t.thread, 7, "ring tagged the wrong thread");
                assert_eq!(t.ev, ring_ev(n as u64 + 1), "torn or stale slot");
            }
        });
    }
    s
}

/// The trace ring's concurrent drain under wrap-around: two pushes
/// into a ONE-slot ring (the second recycles the first's slot) racing
/// a collector. Checks the overwrite accounting is exact and loss is
/// never silent (`events + overwritten == window`, `unpublished == 0`)
/// and that slot recycling never leaks a torn mix of the two pushes —
/// the sequence recheck must reject a slot rewritten mid-read.
fn ring_drain() -> Scenario {
    let mut s = Scenario::new("ring-drain");
    let ring = Arc::new(ModelRing::new(1, 3));
    {
        let ring = Arc::clone(&ring);
        s.thread(move || {
            ring.push(ring_ev(1));
            ring.push(ring_ev(2));
        });
    }
    {
        let ring = Arc::clone(&ring);
        s.thread(move || {
            let (events, stats) = ring.collect(0);
            assert_eq!(
                stats.unpublished, 0,
                "slot behind the published window not committed"
            );
            assert_eq!(
                events.len() as u64 + stats.overwritten,
                stats.next,
                "lost events must be counted, never silent"
            );
            // A 1-slot ring exposes only the newest push of the
            // window: if anything is readable it is exactly the last
            // published event, untorn.
            assert!(events.len() <= 1, "1-slot ring yielded {}", events.len());
            if let Some(t) = events.first() {
                assert_eq!(t.thread, 3, "ring tagged the wrong thread");
                assert_eq!(t.ev, ring_ev(stats.next), "torn or stale slot");
            }
        });
    }
    s
}

/// All checked protocols, in deterministic order.
pub fn protocols() -> Vec<Proto> {
    vec![
        Proto {
            name: "barrier-handoff",
            build: barrier_handoff,
            cfg: Config::default(),
            bounds_note: "2 threads, 1 episode, full park escalation, exhaustive",
        },
        Proto {
            name: "barrier-reuse",
            build: barrier_reuse,
            cfg: Config::default(),
            bounds_note: "2 threads, 2 episodes (sense reversal + counter reset), exhaustive",
        },
        Proto {
            name: "chunkq-claims",
            build: chunkq_claims,
            cfg: Config::default(),
            bounds_note: "2 threads, 3 chunks incl. a batch claim, exhaustive",
        },
        Proto {
            name: "chunkq-reuse",
            build: chunkq_reuse,
            cfg: Config {
                // The composed scenario (claim loops + two full barrier
                // episodes per thread) is too deep for full DFS; bound
                // context switches CHESS-style instead. Known ordering
                // bugs of this shape need at most 2–3 preemptions.
                preemption_bound: Some(3),
                ..Config::default()
            },
            bounds_note: "2 threads, 2 barrier-fenced epochs over 1 chunk, <= 3 preemptions",
        },
        Proto {
            name: "latch-completion",
            build: latch_completion,
            cfg: Config::default(),
            bounds_note: "2 arrivals + 1 waiter, panic payload handoff, exhaustive",
        },
        Proto {
            name: "ring-publish",
            build: ring_publish,
            cfg: Config::default(),
            bounds_note: "1 producer (2 pushes) + 1 concurrent collector, 2 slots, exhaustive",
        },
        Proto {
            name: "ring-drain",
            build: ring_drain,
            cfg: Config::default(),
            bounds_note: "1 producer (2 pushes, wrap) + 1 concurrent collector, 1 slot, exhaustive",
        },
    ]
}

/// Runs one named protocol scenario and returns its report.
pub fn run_protocol(name: &str) -> Report {
    let proto = protocols()
        .into_iter()
        .find(|p| p.name == name)
        .unwrap_or_else(|| panic!("unknown protocol scenario {name:?}"));
    Checker::new(proto.cfg).check(proto.build)
}

// ---------------------------------------------------------------------
// Ordering-minimality matrix
// ---------------------------------------------------------------------

/// Expected verdict of weakening a site one step.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Expect {
    /// Already at the weakest ordering its operation class admits.
    Minimal,
    /// One step weaker must produce a counterexample.
    Caught,
}

/// One row of the minimality matrix.
pub struct SiteSpec {
    /// The `ord(...)` site label in the protocol source.
    pub site: &'static str,
    /// The ordering the source currently uses at this site.
    pub current: Ordering,
    /// Operation class (decides the weakening ladder).
    pub class: OpClass,
    /// Scenario that exercises this site.
    pub scenario: &'static str,
    /// Expected verdict.
    pub expect: Expect,
}

/// Every named site of the four checked protocols.
#[rustfmt::skip]
pub fn matrix() -> Vec<SiteSpec> {
    use Expect::{Caught, Minimal};
    use OpClass::{Load, Rmw, Store};
    use Ordering::{AcqRel, Acquire, Relaxed, Release, SeqCst};
    vec![
        SiteSpec { site: "barrier.sense-prime-load",       current: Relaxed, class: Load,  scenario: "barrier-reuse",   expect: Minimal },
        SiteSpec { site: "barrier.count-arrive-rmw",       current: AcqRel,  class: Rmw,   scenario: "barrier-handoff", expect: Caught },
        SiteSpec { site: "barrier.sense-spin-load",        current: Acquire, class: Load,  scenario: "barrier-handoff", expect: Caught },
        SiteSpec { site: "barrier.sense-yield-load",       current: Acquire, class: Load,  scenario: "barrier-handoff", expect: Caught },
        SiteSpec { site: "barrier.count-reset-store",      current: Relaxed, class: Store, scenario: "barrier-reuse",   expect: Minimal },
        SiteSpec { site: "barrier.sense-flip-store",       current: SeqCst,  class: Store, scenario: "barrier-handoff", expect: Caught },
        SiteSpec { site: "barrier.sleepers-gate-load",     current: SeqCst,  class: Load,  scenario: "barrier-handoff", expect: Caught },
        SiteSpec { site: "barrier.park-sleepers-inc-rmw",  current: SeqCst,  class: Rmw,   scenario: "barrier-handoff", expect: Caught },
        SiteSpec { site: "barrier.park-sense-recheck-load", current: SeqCst, class: Load,  scenario: "barrier-handoff", expect: Caught },
        SiteSpec { site: "barrier.park-sleepers-dec-rmw",  current: Relaxed, class: Rmw,   scenario: "barrier-handoff", expect: Minimal },
        SiteSpec { site: "chunkq.fastpath-load",           current: Relaxed, class: Load,  scenario: "chunkq-claims",   expect: Minimal },
        SiteSpec { site: "chunkq.claim-rmw",               current: Relaxed, class: Rmw,   scenario: "chunkq-claims",   expect: Minimal },
        SiteSpec { site: "chunkq.claim-batch-rmw",         current: Relaxed, class: Rmw,   scenario: "chunkq-claims",   expect: Minimal },
        SiteSpec { site: "chunkq.remaining-load",          current: Relaxed, class: Load,  scenario: "chunkq-claims",   expect: Minimal },
        SiteSpec { site: "chunkq.reset-store",             current: Relaxed, class: Store, scenario: "chunkq-reuse",    expect: Minimal },
        SiteSpec { site: "ring.reserve-load",              current: Relaxed, class: Load,  scenario: "ring-publish",    expect: Minimal },
        SiteSpec { site: "ring.slot-begin-store",          current: Relaxed, class: Store, scenario: "ring-drain",      expect: Minimal },
        SiteSpec { site: "ring.slot-word-store",           current: Release, class: Store, scenario: "ring-drain",      expect: Caught },
        SiteSpec { site: "ring.slot-commit-store",         current: Relaxed, class: Store, scenario: "ring-publish",    expect: Minimal },
        SiteSpec { site: "ring.publish-store",             current: Release, class: Store, scenario: "ring-publish",    expect: Caught },
        SiteSpec { site: "ring.slot-validate-load",        current: Relaxed, class: Load,  scenario: "ring-publish",    expect: Minimal },
        SiteSpec { site: "ring.slot-word-load",            current: Acquire, class: Load,  scenario: "ring-drain",      expect: Caught },
        SiteSpec { site: "ring.slot-recheck-load",         current: Relaxed, class: Load,  scenario: "ring-drain",      expect: Minimal },
        SiteSpec { site: "ring.window-load",               current: Acquire, class: Load,  scenario: "ring-publish",    expect: Caught },
    ]
}

/// Sites demoted to their current ordering with the checker's blessing:
/// the suite explores clean at the demoted strength, and the site's
/// `// ordering:` comment carries the analytic argument.
pub fn demoted_sites() -> Vec<(&'static str, &'static str, &'static str)> {
    vec![
        (
            "barrier.count-reset-store",
            "Release -> Relaxed",
            "the SeqCst sense flip is the release edge every next-episode arrival acquires",
        ),
        (
            "barrier.sense-prime-load",
            "SeqCst -> Relaxed",
            "coherence alone suffices: every participant observed the previous flip, so the prime read cannot go stale",
        ),
        (
            "barrier.sense-spin-load",
            "SeqCst -> Acquire",
            "the SeqCst park recheck is the lost-wakeup safety net; the spin load only needs the flip's release edge",
        ),
        (
            "barrier.sense-yield-load",
            "SeqCst -> Acquire",
            "same safety net as the spin load",
        ),
        (
            "barrier.park-sleepers-dec-rmw",
            "SeqCst -> Relaxed",
            "a stale-high sleeper count only causes a harmless extra notify; RMW atomicity keeps the count exact",
        ),
        (
            "ring.slot-commit-store",
            "Release -> Relaxed",
            "every reader reaches the slot through the Acquired publish window, which program-order-follows this commit and already orders the seq and the words",
        ),
        (
            "ring.slot-validate-load",
            "Acquire -> Relaxed",
            "the Acquired window floors this load at the committed seq; a concurrent recycler is caught by the word-load Acquire edge and the s2 re-check",
        ),
    ]
}

/// Runs the minimality-matrix row for `spec`: weakens the site one step
/// and explores its scenario. Returns `None` for [`Expect::Minimal`]
/// rows (nothing to weaken), otherwise the weakened-run report.
///
/// Callers must hold [`serial_guard`] — the override map is global.
pub fn run_weakened(spec: &SiteSpec) -> Option<Report> {
    let weaker = one_step_weaker(spec.current, spec.class)?;
    site::set_override(spec.site, weaker);
    let report = run_protocol(spec.scenario);
    site::clear_overrides();
    Some(report)
}

/// Replays a recorded counterexample schedule against `spec`'s
/// scenario with the site weakened one step — demonstrates that the
/// counterexample is deterministic, not a search artifact.
///
/// Callers must hold [`serial_guard`].
pub fn replay_weakened(spec: &SiteSpec, schedule: &[Decision]) -> Report {
    let weaker =
        one_step_weaker(spec.current, spec.class).expect("replay_weakened on a minimal site");
    let proto = protocols()
        .into_iter()
        .find(|p| p.name == spec.scenario)
        .expect("matrix scenario exists");
    site::set_override(spec.site, weaker);
    let report = Checker::new(proto.cfg).replay((proto.build)(), schedule);
    site::clear_overrides();
    report
}

/// Looks up a matrix row by site name.
pub fn find_site(name: &str) -> Option<SiteSpec> {
    matrix().into_iter().find(|s| s.site == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matrix_rows_are_consistent() {
        let names: Vec<_> = protocols().iter().map(|p| p.name).collect();
        for spec in matrix() {
            assert!(
                names.contains(&spec.scenario),
                "{}: unknown scenario {}",
                spec.site,
                spec.scenario
            );
            let weaker = one_step_weaker(spec.current, spec.class);
            match spec.expect {
                Expect::Minimal => assert!(
                    weaker.is_none(),
                    "{}: marked Minimal but {:?} can still weaken",
                    spec.site,
                    spec.current
                ),
                Expect::Caught => assert!(
                    weaker.is_some(),
                    "{}: marked Caught but {:?} is already weakest",
                    spec.site,
                    spec.current
                ),
            }
        }
    }

    #[test]
    fn demoted_sites_are_matrix_rows() {
        for (site, _, _) in demoted_sites() {
            assert!(
                find_site(site).is_some(),
                "{site}: demoted but not in matrix"
            );
        }
    }
}
