//! # work-scheduler
//!
//! Affinity-aware execution substrate for the islands-of-cores
//! reproduction: a persistent [`WorkerPool`] of threads bound to logical
//! CPUs of a modelled machine, grouped into [`TeamSpec`] work teams with
//! private [`SenseBarrier`]s, plus the [`DisjointCell`] primitive that
//! lets team ranks write disjoint regions of shared arrays.
//!
//! The design mirrors the paper's proprietary scheduler: threads are
//! created once and pinned (here: logically, driving the NUMA model);
//! all work distribution, synchronization, and data placement decisions
//! are made by the library rather than by an OpenMP runtime.
//!
//! ## Example: islands synchronize only at step end
//!
//! ```
//! use work_scheduler::{TeamSpec, WorkerPool};
//! use std::sync::atomic::{AtomicUsize, Ordering};
//!
//! let pool = WorkerPool::new(4);
//! let teams = TeamSpec::even(4, 2); // two islands of two cores
//! let stages_done = AtomicUsize::new(0);
//! pool.run_teams(&teams, |ctx| {
//!     for _stage in 0..3 {
//!         // ... compute this team's part of the stage ...
//!         ctx.team_barrier(); // intra-island sync only
//!         stages_done.fetch_add(1, Ordering::SeqCst);
//!     }
//! });
//! // run_teams returning is the global once-per-step synchronization.
//! assert_eq!(stages_done.load(Ordering::SeqCst), 4 * 3);
//! ```

#![warn(missing_docs)]
// `unsafe` is confined to three well-documented primitives: the scoped
// lifetime erasure in `WorkerPool::broadcast`, the aliasing contract of
// `DisjointCell`, and the initialized-prefix invariant of `InlineVec`.
#![deny(unsafe_op_in_unsafe_fn)]

mod affinity;
mod barrier;
mod dynamic;
mod inline_vec;
#[cfg(feature = "model")]
pub mod modelcheck_suite;
mod pool;
mod share;
mod sync;
mod team;

pub use affinity::{AffinityMap, LogicalCpu};
pub use barrier::{available_cores, spin_budget_for, BarrierScope, SenseBarrier};
pub use dynamic::ChunkQueue;
pub use inline_vec::InlineVec;
pub use pool::{WorkerCtx, WorkerPool};
pub use share::{AccessTracker, DisjointCell};
pub use team::{BuildTeamsError, TeamCtx, TeamSpec};
