//! Property-based tests for the stencil-engine substrate.
//!
//! Hermetic build: the properties are swept over deterministic, seeded
//! random cases (std-only) instead of the external `proptest` crate.
//! The default feature set runs a quick sweep; `--features proptest`
//! widens it roughly tenfold. Every assertion message carries the case
//! index, which reproduces exactly because the stream is a pure
//! function of the seed.

use stencil_engine::rng::{Rng64, Xoshiro256pp};
use stencil_engine::{
    Array3, Axis, BlockPlanner, FieldRole, FieldTable, Halo3, Range1, Region3, StageDef,
    StageGraph, StageId, StencilPattern,
};

fn cases(quick: usize) -> usize {
    if cfg!(feature = "proptest") {
        quick * 10
    } else {
        quick
    }
}

fn any_range(rng: &mut Xoshiro256pp) -> Range1 {
    let lo = -50 + rng.below(100) as i64;
    let len = rng.below(40) as i64;
    Range1::new(lo, lo + len)
}

fn any_region(rng: &mut Xoshiro256pp) -> Region3 {
    Region3::new(any_range(rng), any_range(rng), any_range(rng))
}

fn nonempty_range(rng: &mut Xoshiro256pp) -> Range1 {
    let lo = -20 + rng.below(40) as i64;
    let len = 1 + rng.below(15) as i64;
    Range1::new(lo, lo + len)
}

fn nonempty_region(rng: &mut Xoshiro256pp) -> Region3 {
    Region3::new(
        nonempty_range(rng),
        nonempty_range(rng),
        nonempty_range(rng),
    )
}

fn any_halo(rng: &mut Xoshiro256pp) -> Halo3 {
    Halo3 {
        i_neg: rng.below(4) as i64,
        i_pos: rng.below(4) as i64,
        j_neg: rng.below(4) as i64,
        j_pos: rng.below(4) as i64,
        k_neg: rng.below(4) as i64,
        k_pos: rng.below(4) as i64,
    }
}

fn any_pattern(rng: &mut Xoshiro256pp) -> StencilPattern {
    let n = 1 + rng.below(7);
    let offsets: Vec<(i64, i64, i64)> = (0..n)
        .map(|_| {
            (
                rng.below(5) as i64 - 2,
                rng.below(5) as i64 - 2,
                rng.below(5) as i64 - 2,
            )
        })
        .collect();
    StencilPattern::from_offsets(offsets)
}

#[test]
fn intersect_is_subset_of_both_and_commutes() {
    let mut rng = Xoshiro256pp::seed_from_u64(0x57E0_0001);
    for case in 0..cases(256) {
        let a = any_region(&mut rng);
        let b = any_region(&mut rng);
        let c = a.intersect(b);
        assert!(a.contains_region(c), "case {case}: {a:?} ∩ {b:?}");
        assert!(b.contains_region(c), "case {case}: {a:?} ∩ {b:?}");
        assert_eq!(c, b.intersect(a), "case {case}: intersection must commute");
    }
}

#[test]
fn hull_contains_both() {
    let mut rng = Xoshiro256pp::seed_from_u64(0x57E0_0002);
    for case in 0..cases(256) {
        let a = any_region(&mut rng);
        let b = any_region(&mut rng);
        let h = a.hull(b);
        assert!(h.contains_region(a), "case {case}");
        assert!(h.contains_region(b), "case {case}");
    }
}

#[test]
fn expand_then_intersect_recovers() {
    let mut rng = Xoshiro256pp::seed_from_u64(0x57E0_0003);
    for case in 0..cases(256) {
        let a = nonempty_region(&mut rng);
        let h = any_halo(&mut rng);
        // Expanding never loses the original region.
        let e = a.expand(h);
        assert!(e.contains_region(a), "case {case}");
        assert_eq!(e.intersect(a), a, "case {case}");
    }
}

#[test]
fn expand_composes_additively() {
    let mut rng = Xoshiro256pp::seed_from_u64(0x57E0_0004);
    for case in 0..cases(256) {
        let a = nonempty_region(&mut rng);
        let h1 = any_halo(&mut rng);
        let h2 = any_halo(&mut rng);
        assert_eq!(
            a.expand(h1).expand(h2),
            a.expand(h1.plus(h2)),
            "case {case}"
        );
    }
}

#[test]
fn split_partitions_cells() {
    let mut rng = Xoshiro256pp::seed_from_u64(0x57E0_0005);
    for case in 0..cases(256) {
        let r = nonempty_region(&mut rng);
        let parts = 1 + rng.below(8);
        let axis = Axis::ALL[rng.below(3)];
        let parts_v = r.split(axis, parts);
        assert_eq!(parts_v.len(), parts, "case {case}");
        let total: usize = parts_v.iter().map(|p| p.cells()).sum();
        assert_eq!(total, r.cells(), "case {case}");
        for a in 0..parts_v.len() {
            for b in (a + 1)..parts_v.len() {
                assert!(!parts_v[a].overlaps(parts_v[b]), "case {case}");
            }
        }
        // Part sizes differ by at most one along the axis.
        let lens: Vec<usize> = parts_v.iter().map(|p| p.range(axis).len()).collect();
        let mn = *lens.iter().min().unwrap();
        let mx = *lens.iter().max().unwrap();
        assert!(mx - mn <= 1, "case {case}: {lens:?}");
    }
}

#[test]
fn chunks_cover_in_order() {
    let mut rng = Xoshiro256pp::seed_from_u64(0x57E0_0006);
    for case in 0..cases(256) {
        let r = nonempty_region(&mut rng);
        let chunk = 1 + rng.below(9);
        let axis = Axis::ALL[rng.below(3)];
        let cs = r.chunks(axis, chunk);
        let total: usize = cs.iter().map(|c| c.cells()).sum();
        assert_eq!(total, r.cells(), "case {case}");
        for w in cs.windows(2) {
            assert_eq!(w[0].range(axis).hi, w[1].range(axis).lo, "case {case}");
        }
    }
}

#[test]
fn pattern_halo_bounds_offsets() {
    let mut rng = Xoshiro256pp::seed_from_u64(0x57E0_0007);
    for case in 0..cases(256) {
        let p = any_pattern(&mut rng);
        let h = p.halo();
        for o in p.offsets() {
            assert!(
                -o.di <= h.i_neg && o.di <= h.i_pos,
                "case {case}: {o:?} vs {h:?}"
            );
            assert!(
                -o.dj <= h.j_neg && o.dj <= h.j_pos,
                "case {case}: {o:?} vs {h:?}"
            );
            assert!(
                -o.dk <= h.k_neg && o.dk <= h.k_pos,
                "case {case}: {o:?} vs {h:?}"
            );
        }
    }
}

#[test]
fn pattern_union_halo_is_max() {
    let mut rng = Xoshiro256pp::seed_from_u64(0x57E0_0008);
    for case in 0..cases(256) {
        let a = any_pattern(&mut rng);
        let b = any_pattern(&mut rng);
        let u = a.union(&b);
        assert_eq!(u.halo(), a.halo().max(b.halo()), "case {case}");
    }
}

#[test]
fn subtract_partitions_difference() {
    let mut rng = Xoshiro256pp::seed_from_u64(0x57E0_0009);
    for case in 0..cases(256) {
        let a = any_region(&mut rng);
        let b = any_region(&mut rng);
        let parts = a.subtract(b);
        let cut = a.intersect(b);
        let total: usize = parts.iter().map(|p| p.cells()).sum();
        assert_eq!(total, a.cells() - cut.cells(), "case {case}: {a:?} − {b:?}");
        for (n, p) in parts.iter().enumerate() {
            assert!(a.contains_region(*p), "case {case}");
            assert!(!p.overlaps(b), "case {case}");
            for q in &parts[n + 1..] {
                assert!(!p.overlaps(*q), "case {case}");
            }
        }
    }
}

#[test]
fn array_from_fn_matches_get() {
    let mut rng = Xoshiro256pp::seed_from_u64(0x57E0_000A);
    for _case in 0..cases(64) {
        let r = nonempty_region(&mut rng);
        let a = Array3::from_fn(r, |i, j, k| (i * 10000 + j * 100 + k) as f64);
        for (i, j, k) in r.points() {
            assert_eq!(a.get(i, j, k), (i * 10000 + j * 100 + k) as f64);
        }
    }
}

#[test]
fn array_copy_region_roundtrip() {
    let mut rng = Xoshiro256pp::seed_from_u64(0x57E0_000B);
    for case in 0..cases(64) {
        let r = nonempty_region(&mut rng);
        let src = Array3::from_fn(r, |i, j, k| (i + 2 * j + 3 * k) as f64);
        let mut dst = Array3::zeros(r);
        dst.copy_region_from(&src, r);
        assert_eq!(dst.max_abs_diff(&src), 0.0, "case {case}");
    }
}

// Builds a random chain graph and checks requirement monotonicity: a
// larger target never yields smaller per-stage regions.
#[test]
fn required_regions_monotone() {
    let mut rng = Xoshiro256pp::seed_from_u64(0x57E0_000C);
    for case in 0..cases(128) {
        let n = 2 + rng.below(4);
        let halos: Vec<i64> = (0..n).map(|_| rng.below(3) as i64).collect();
        let t1 = rng.below(10) as i64;
        let t2 = 10 + rng.below(14) as i64;

        let mut table = FieldTable::new();
        let x = table.add("x", FieldRole::External);
        let mut prev = x;
        let mut stages = Vec::new();
        for (s, h) in halos.iter().enumerate() {
            let role = if s + 1 == n {
                FieldRole::Output
            } else {
                FieldRole::Intermediate
            };
            let f = table.add(&format!("f{s}"), role);
            stages.push(StageDef {
                id: StageId(s as u32),
                name: format!("s{s}"),
                outputs: vec![f],
                inputs: vec![(
                    prev,
                    StencilPattern::from_offsets([(-h, 0, 0), (0, 0, 0), (*h, 0, 0)]),
                )],
                flops_per_cell: 1.0,
            });
            prev = f;
        }
        let g = StageGraph::build(table, stages).unwrap();
        let domain = Region3::of_extent(64, 2, 2);
        let small = Region3::new(Range1::new(t1, t2), domain.j, domain.k);
        let big = Region3::new(Range1::new(0, 40), domain.j, domain.k);
        let rs = g.required_regions(small, domain);
        let rb = g.required_regions(big, domain);
        for (a, b) in rs.iter().zip(&rb) {
            assert!(b.contains_region(*a), "case {case}: halos {halos:?}");
        }
        // Each stage's region contains the next stage's (chain property).
        for w in rs.windows(2) {
            assert!(w[0].contains_region(w[1]), "case {case}: halos {halos:?}");
        }
    }
}

#[test]
fn partition_extra_updates_nonnegative_and_cover() {
    for parts in 1..7usize {
        for halo in 0..3i64 {
            let mut table = FieldTable::new();
            let x = table.add("x", FieldRole::External);
            let a = table.add("a", FieldRole::Intermediate);
            let o = table.add("o", FieldRole::Output);
            let p = StencilPattern::from_offsets([(-halo, 0, 0), (0, 0, 0), (halo, 0, 0)]);
            let stages = vec![
                StageDef {
                    id: StageId(0),
                    name: "s0".into(),
                    outputs: vec![a],
                    inputs: vec![(x, p.clone())],
                    flops_per_cell: 1.0,
                },
                StageDef {
                    id: StageId(1),
                    name: "s1".into(),
                    outputs: vec![o],
                    inputs: vec![(a, p)],
                    flops_per_cell: 1.0,
                },
            ];
            let g = StageGraph::build(table, stages).unwrap();
            let domain = Region3::of_extent(40, 4, 4);
            let whole: usize = g
                .required_regions(domain, domain)
                .iter()
                .map(|r| r.cells())
                .sum();
            let split_total: usize = domain
                .split(Axis::I, parts)
                .into_iter()
                .map(|part| {
                    g.required_regions(part, domain)
                        .iter()
                        .map(|r| r.cells())
                        .sum::<usize>()
                })
                .sum();
            assert!(split_total >= whole, "parts {parts}, halo {halo}");
            if halo == 0 || parts == 1 {
                assert_eq!(split_total, whole, "parts {parts}, halo {halo}");
            } else {
                assert!(split_total > whole, "parts {parts}, halo {halo}");
            }
        }
    }
}

#[test]
fn block_plan_outputs_tile_any_domain() {
    let mut rng = Xoshiro256pp::seed_from_u64(0x57E0_000D);
    for case in 0..cases(128) {
        let ni = 1 + rng.below(39);
        let nj = 1 + rng.below(5);
        let nk = 1 + rng.below(5);
        let cache_kb = 1 + rng.below(63);

        let mut table = FieldTable::new();
        let x = table.add("x", FieldRole::External);
        let o = table.add("o", FieldRole::Output);
        let stages = vec![StageDef {
            id: StageId(0),
            name: "s".into(),
            outputs: vec![o],
            inputs: vec![(x, StencilPattern::seven_point())],
            flops_per_cell: 1.0,
        }];
        let g = StageGraph::build(table, stages).unwrap();
        let domain = Region3::of_extent(ni, nj, nk);
        match BlockPlanner::new(cache_kb * 1024).plan(&g, domain, domain) {
            Ok(b) => {
                let total: usize = b.blocks.iter().map(|p| p.output_region.cells()).sum();
                assert_eq!(
                    total,
                    domain.cells(),
                    "case {case}: {ni}×{nj}×{nk} @ {cache_kb} KiB"
                );
            }
            Err(_) => {
                // Acceptable only when the cache is genuinely too small for
                // a depth-1 slab of this domain.
            }
        }
    }
}
