//! Property-based tests for the stencil-engine substrate.

use proptest::prelude::*;
use stencil_engine::{
    Array3, Axis, BlockPlanner, FieldRole, FieldTable, Halo3, Range1, Region3, StageDef,
    StageGraph, StageId, StencilPattern,
};

fn arb_range() -> impl Strategy<Value = Range1> {
    (-50_i64..50, 0_i64..40).prop_map(|(lo, len)| Range1::new(lo, lo + len))
}

fn arb_region() -> impl Strategy<Value = Region3> {
    (arb_range(), arb_range(), arb_range()).prop_map(|(i, j, k)| Region3::new(i, j, k))
}

fn arb_nonempty_region() -> impl Strategy<Value = Region3> {
    (
        (-20_i64..20, 1_i64..16),
        (-20_i64..20, 1_i64..16),
        (-20_i64..20, 1_i64..16),
    )
        .prop_map(|((il, iw), (jl, jw), (kl, kw))| {
            Region3::new(
                Range1::new(il, il + iw),
                Range1::new(jl, jl + jw),
                Range1::new(kl, kl + kw),
            )
        })
}

fn arb_halo() -> impl Strategy<Value = Halo3> {
    (0_i64..4, 0_i64..4, 0_i64..4, 0_i64..4, 0_i64..4, 0_i64..4).prop_map(
        |(a, b, c, d, e, f)| Halo3 {
            i_neg: a,
            i_pos: b,
            j_neg: c,
            j_pos: d,
            k_neg: e,
            k_pos: f,
        },
    )
}

fn arb_pattern() -> impl Strategy<Value = StencilPattern> {
    proptest::collection::vec(((-2_i64..=2), (-2_i64..=2), (-2_i64..=2)), 1..8)
        .prop_map(StencilPattern::from_offsets)
}

proptest! {
    #[test]
    fn intersect_is_subset_of_both(a in arb_region(), b in arb_region()) {
        let c = a.intersect(b);
        prop_assert!(a.contains_region(c));
        prop_assert!(b.contains_region(c));
    }

    #[test]
    fn intersect_commutes(a in arb_region(), b in arb_region()) {
        prop_assert_eq!(a.intersect(b), b.intersect(a));
    }

    #[test]
    fn hull_contains_both(a in arb_region(), b in arb_region()) {
        let h = a.hull(b);
        prop_assert!(h.contains_region(a));
        prop_assert!(h.contains_region(b));
    }

    #[test]
    fn expand_then_intersect_recovers(a in arb_nonempty_region(), h in arb_halo()) {
        // Expanding never loses the original region.
        let e = a.expand(h);
        prop_assert!(e.contains_region(a));
        prop_assert_eq!(e.intersect(a), a);
    }

    #[test]
    fn expand_composes_additively(a in arb_nonempty_region(), h1 in arb_halo(), h2 in arb_halo()) {
        prop_assert_eq!(a.expand(h1).expand(h2), a.expand(h1.plus(h2)));
    }

    #[test]
    fn split_partitions_cells(r in arb_nonempty_region(), parts in 1usize..9, axis_n in 0usize..3) {
        let axis = Axis::ALL[axis_n];
        let parts_v = r.split(axis, parts);
        prop_assert_eq!(parts_v.len(), parts);
        let total: usize = parts_v.iter().map(|p| p.cells()).sum();
        prop_assert_eq!(total, r.cells());
        for a in 0..parts_v.len() {
            for b in (a + 1)..parts_v.len() {
                prop_assert!(!parts_v[a].overlaps(parts_v[b]));
            }
        }
        // Part sizes differ by at most one along the axis.
        let lens: Vec<usize> = parts_v.iter().map(|p| p.range(axis).len()).collect();
        let mn = *lens.iter().min().unwrap();
        let mx = *lens.iter().max().unwrap();
        prop_assert!(mx - mn <= 1);
    }

    #[test]
    fn chunks_cover_in_order(r in arb_nonempty_region(), chunk in 1usize..10, axis_n in 0usize..3) {
        let axis = Axis::ALL[axis_n];
        let cs = r.chunks(axis, chunk);
        let total: usize = cs.iter().map(|c| c.cells()).sum();
        prop_assert_eq!(total, r.cells());
        for w in cs.windows(2) {
            prop_assert_eq!(w[0].range(axis).hi, w[1].range(axis).lo);
        }
    }

    #[test]
    fn pattern_halo_bounds_offsets(p in arb_pattern()) {
        let h = p.halo();
        for o in p.offsets() {
            prop_assert!(-o.di <= h.i_neg && o.di <= h.i_pos);
            prop_assert!(-o.dj <= h.j_neg && o.dj <= h.j_pos);
            prop_assert!(-o.dk <= h.k_neg && o.dk <= h.k_pos);
        }
    }

    #[test]
    fn pattern_union_halo_is_max(a in arb_pattern(), b in arb_pattern()) {
        let u = a.union(&b);
        prop_assert_eq!(u.halo(), a.halo().max(b.halo()));
    }

    #[test]
    fn subtract_partitions_difference(a in arb_region(), b in arb_region()) {
        let parts = a.subtract(b);
        let cut = a.intersect(b);
        let total: usize = parts.iter().map(|p| p.cells()).sum();
        prop_assert_eq!(total, a.cells() - cut.cells());
        for (n, p) in parts.iter().enumerate() {
            prop_assert!(a.contains_region(*p));
            prop_assert!(!p.overlaps(b));
            for q in &parts[n + 1..] {
                prop_assert!(!p.overlaps(*q));
            }
        }
    }

    #[test]
    fn array_from_fn_matches_get(r in arb_nonempty_region()) {
        let a = Array3::from_fn(r, |i, j, k| (i * 10000 + j * 100 + k) as f64);
        for (i, j, k) in r.points() {
            prop_assert_eq!(a.get(i, j, k), (i * 10000 + j * 100 + k) as f64);
        }
    }

    #[test]
    fn array_copy_region_roundtrip(r in arb_nonempty_region()) {
        let src = Array3::from_fn(r, |i, j, k| (i + 2 * j + 3 * k) as f64);
        let mut dst = Array3::zeros(r);
        dst.copy_region_from(&src, r);
        prop_assert_eq!(dst.max_abs_diff(&src), 0.0);
    }
}

// Builds a random chain graph and checks requirement monotonicity: a
// larger target never yields smaller per-stage regions.
proptest! {
    #[test]
    fn required_regions_monotone(
        halos in proptest::collection::vec(0_i64..3, 2..6),
        t1 in 0_i64..10,
        t2 in 10_i64..24,
    ) {
        let mut table = FieldTable::new();
        let x = table.add("x", FieldRole::External);
        let mut prev = x;
        let n = halos.len();
        let mut stages = Vec::new();
        for (s, h) in halos.iter().enumerate() {
            let role = if s + 1 == n { FieldRole::Output } else { FieldRole::Intermediate };
            let f = table.add(&format!("f{s}"), role);
            stages.push(StageDef {
                id: StageId(s as u32),
                name: format!("s{s}"),
                outputs: vec![f],
                inputs: vec![(prev, StencilPattern::from_offsets([(-h, 0, 0), (0, 0, 0), (*h, 0, 0)]))],
                flops_per_cell: 1.0,
            });
            prev = f;
        }
        let g = StageGraph::build(table, stages).unwrap();
        let domain = Region3::of_extent(64, 2, 2);
        let small = Region3::new(Range1::new(t1, t2), domain.j, domain.k);
        let big = Region3::new(Range1::new(0, 40), domain.j, domain.k);
        let rs = g.required_regions(small, domain);
        let rb = g.required_regions(big, domain);
        for (a, b) in rs.iter().zip(&rb) {
            prop_assert!(b.contains_region(*a));
        }
        // Each stage's region contains the next stage's (chain property).
        for w in rs.windows(2) {
            prop_assert!(w[0].contains_region(w[1]));
        }
    }

    #[test]
    fn partition_extra_updates_nonnegative_and_cover(
        parts in 1usize..7,
        halo in 0_i64..3,
    ) {
        let mut table = FieldTable::new();
        let x = table.add("x", FieldRole::External);
        let a = table.add("a", FieldRole::Intermediate);
        let o = table.add("o", FieldRole::Output);
        let p = StencilPattern::from_offsets([(-halo, 0, 0), (0, 0, 0), (halo, 0, 0)]);
        let stages = vec![
            StageDef { id: StageId(0), name: "s0".into(), outputs: vec![a],
                       inputs: vec![(x, p.clone())], flops_per_cell: 1.0 },
            StageDef { id: StageId(1), name: "s1".into(), outputs: vec![o],
                       inputs: vec![(a, p)], flops_per_cell: 1.0 },
        ];
        let g = StageGraph::build(table, stages).unwrap();
        let domain = Region3::of_extent(40, 4, 4);
        let whole: usize = g.required_regions(domain, domain).iter().map(|r| r.cells()).sum();
        let split_total: usize = domain
            .split(Axis::I, parts)
            .into_iter()
            .map(|part| g.required_regions(part, domain).iter().map(|r| r.cells()).sum::<usize>())
            .sum();
        prop_assert!(split_total >= whole);
        if halo == 0 || parts == 1 {
            prop_assert_eq!(split_total, whole);
        } else {
            prop_assert!(split_total > whole);
        }
    }

    #[test]
    fn block_plan_outputs_tile_any_domain(
        ni in 1usize..40, nj in 1usize..6, nk in 1usize..6,
        cache_kb in 1usize..64,
    ) {
        let mut table = FieldTable::new();
        let x = table.add("x", FieldRole::External);
        let o = table.add("o", FieldRole::Output);
        let stages = vec![StageDef {
            id: StageId(0), name: "s".into(), outputs: vec![o],
            inputs: vec![(x, StencilPattern::seven_point())], flops_per_cell: 1.0,
        }];
        let g = StageGraph::build(table, stages).unwrap();
        let domain = Region3::of_extent(ni, nj, nk);
        match BlockPlanner::new(cache_kb * 1024).plan(&g, domain, domain) {
            Ok(b) => {
                let total: usize = b.blocks.iter().map(|p| p.output_region.cells()).sum();
                prop_assert_eq!(total, domain.cells());
            }
            Err(_) => {
                // Acceptable only when the cache is genuinely too small for
                // a depth-1 slab of this domain.
            }
        }
    }
}
