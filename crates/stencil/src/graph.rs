//! Stage dependency graphs and backward requirement analysis.
//!
//! A [`StageGraph`] is an ordered list of [`StageDef`]s forming one time
//! step of a heterogeneous stencil computation (17 stages for MPDATA).
//! Its central operation is [`StageGraph::required_regions`]: given the
//! region of the *final outputs* a worker is responsible for, walk the
//! stages backwards, expanding by each input's halo, to obtain the exact
//! region every stage must be computed on so that the worker never reads
//! an intermediate value produced by another worker.
//!
//! This single analysis drives:
//! * the islands-of-cores redundant ("extra") element counts (Table 2 of
//!   the paper),
//! * the enlarged per-stage loop bounds of the islands executor,
//! * the overlapped tiling of the (3+1)D block decomposition along the
//!   sequential block axis.

use crate::field::{FieldId, FieldRole, FieldTable};
use crate::region::{Halo3, Region3};
use crate::stage::{StageDef, StageId};
use std::collections::HashMap;
use std::error::Error;
use std::fmt;

/// Error produced when assembling an ill-formed [`StageGraph`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum BuildGraphError {
    /// A stage reads a field that is neither external nor produced by an
    /// earlier stage.
    ReadBeforeWrite {
        /// Offending stage.
        stage: StageId,
        /// Field read too early.
        field: FieldId,
    },
    /// A stage writes a field marked [`FieldRole::External`].
    WriteToExternal {
        /// Offending stage.
        stage: StageId,
        /// External field written.
        field: FieldId,
    },
    /// Two stages write the same field.
    DuplicateWrite {
        /// Second writer.
        stage: StageId,
        /// Field written twice.
        field: FieldId,
    },
    /// A field marked [`FieldRole::Output`] is never written.
    UnwrittenOutput {
        /// The output field no stage writes.
        field: FieldId,
    },
    /// The graph has no stages.
    Empty,
}

impl fmt::Display for BuildGraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BuildGraphError::ReadBeforeWrite { stage, field } => {
                write!(f, "{stage} reads {field} before any stage writes it")
            }
            BuildGraphError::WriteToExternal { stage, field } => {
                write!(f, "{stage} writes external {field}")
            }
            BuildGraphError::DuplicateWrite { stage, field } => {
                write!(
                    f,
                    "{stage} writes {field}, which an earlier stage already wrote"
                )
            }
            BuildGraphError::UnwrittenOutput { field } => {
                write!(f, "output {field} is never written")
            }
            BuildGraphError::Empty => write!(f, "stage graph has no stages"),
        }
    }
}

impl Error for BuildGraphError {}

/// An immutable, validated stage dependency graph for one time step.
#[derive(Clone, Debug)]
pub struct StageGraph {
    fields: FieldTable,
    stages: Vec<StageDef>,
    /// `producer[f] = Some(s)` iff stage `s` writes field `f`.
    producer: Vec<Option<StageId>>,
}

impl StageGraph {
    /// Validates and builds a graph from a field table and stages in
    /// execution order.
    ///
    /// Rules enforced:
    /// * every read is of an external field or of a field written by a
    ///   strictly earlier stage (stages are straight-line SSA);
    /// * no stage writes an external field;
    /// * each field is written by at most one stage;
    /// * every declared output field is written.
    ///
    /// # Errors
    ///
    /// Returns a [`BuildGraphError`] describing the first violation.
    pub fn build(fields: FieldTable, stages: Vec<StageDef>) -> Result<Self, BuildGraphError> {
        if stages.is_empty() {
            return Err(BuildGraphError::Empty);
        }
        let mut producer: Vec<Option<StageId>> = vec![None; fields.len()];
        for (n, st) in stages.iter().enumerate() {
            debug_assert_eq!(st.id.index(), n, "stage ids must be dense and ordered");
            for (f, _) in &st.inputs {
                let ok = fields.role(*f) == FieldRole::External || producer[f.index()].is_some();
                if !ok {
                    return Err(BuildGraphError::ReadBeforeWrite {
                        stage: st.id,
                        field: *f,
                    });
                }
            }
            for f in &st.outputs {
                if fields.role(*f) == FieldRole::External {
                    return Err(BuildGraphError::WriteToExternal {
                        stage: st.id,
                        field: *f,
                    });
                }
                if producer[f.index()].is_some() {
                    return Err(BuildGraphError::DuplicateWrite {
                        stage: st.id,
                        field: *f,
                    });
                }
                producer[f.index()] = Some(st.id);
            }
        }
        for (f, _, role) in fields.iter() {
            if role == FieldRole::Output && producer[f.index()].is_none() {
                return Err(BuildGraphError::UnwrittenOutput { field: f });
            }
        }
        Ok(StageGraph {
            fields,
            stages,
            producer,
        })
    }

    /// The field table.
    pub fn fields(&self) -> &FieldTable {
        &self.fields
    }

    /// The stages in execution order.
    pub fn stages(&self) -> &[StageDef] {
        &self.stages
    }

    /// Number of stages.
    pub fn stage_count(&self) -> usize {
        self.stages.len()
    }

    /// The stage that writes `field`, if any.
    pub fn producer(&self, field: FieldId) -> Option<StageId> {
        self.producer[field.index()]
    }

    /// Ids of the graph's final output fields.
    pub fn output_fields(&self) -> Vec<FieldId> {
        self.fields.with_role(FieldRole::Output)
    }

    /// Ids of the graph's external input fields.
    pub fn external_fields(&self) -> Vec<FieldId> {
        self.fields.with_role(FieldRole::External)
    }

    /// Backward requirement analysis.
    ///
    /// Given the region `target` of the final outputs a worker owns and
    /// the global `domain` the computation is defined on, returns for
    /// every stage the region it must be computed on (clipped to
    /// `domain`), such that all intra-step reads of intermediates resolve
    /// to locally computed cells and only *external* fields are read from
    /// shared memory.
    ///
    /// The result is exact for box-shaped requirements: requirements are
    /// accumulated as hulls, which for MPDATA-style graphs (all patterns
    /// are boxes) introduces no over-approximation.
    pub fn required_regions(&self, target: Region3, domain: Region3) -> Vec<Region3> {
        let mut req: HashMap<FieldId, Region3> = HashMap::new();
        for f in self.output_fields() {
            req.insert(f, target.intersect(domain));
        }
        let mut compute = vec![Region3::empty(); self.stages.len()];
        for st in self.stages.iter().rev() {
            // Region this stage must produce: union of requirements on its
            // outputs, clipped to the domain.
            let mut r = Region3::empty();
            for f in &st.outputs {
                if let Some(need) = req.get(f) {
                    r = r.hull(*need);
                }
            }
            let r = r.intersect(domain);
            compute[st.id.index()] = r;
            if r.is_empty() {
                continue;
            }
            for (f, p) in &st.inputs {
                let need = r.expand(p.halo()).intersect(domain);
                let e = req.entry(*f).or_insert(Region3::empty());
                *e = e.hull(need);
            }
        }
        compute
    }

    /// The per-external-field read regions implied by
    /// [`StageGraph::required_regions`] — i.e. which parts of the shared
    /// input arrays a worker owning `target` touches.
    pub fn external_read_regions(
        &self,
        target: Region3,
        domain: Region3,
    ) -> HashMap<FieldId, Region3> {
        let compute = self.required_regions(target, domain);
        let mut out: HashMap<FieldId, Region3> = HashMap::new();
        for st in &self.stages {
            let r = compute[st.id.index()];
            if r.is_empty() {
                continue;
            }
            for (f, p) in &st.inputs {
                if self.fields.role(*f) == FieldRole::External {
                    let need = r.expand(p.halo()).intersect(domain);
                    let e = out.entry(*f).or_insert(Region3::empty());
                    *e = e.hull(need);
                }
            }
        }
        out
    }

    /// Cumulative halo of each stage: how far the *final output* depends
    /// on that stage's values, i.e. by how much the stage's compute region
    /// exceeds the owned output region on an unbounded domain.
    ///
    /// `cumulative_halos()[s]` is the `Halo3` such that
    /// `required_regions(target, unbounded)[s] == target.expand(halo)`
    /// (when the stage is live).
    pub fn cumulative_halos(&self) -> Vec<Halo3> {
        // Work on a large synthetic domain so no clipping occurs. Any
        // realistic cumulative halo is far below this margin.
        let big = 4096;
        let domain = Region3::of_extent(3 * big, 3 * big, 3 * big);
        let target = Region3::new(
            crate::region::Range1::new(big as i64, 2 * big as i64),
            crate::region::Range1::new(big as i64, 2 * big as i64),
            crate::region::Range1::new(big as i64, 2 * big as i64),
        );
        let regions = self.required_regions(target, domain);
        regions
            .iter()
            .map(|r| {
                if r.is_empty() {
                    Halo3::ZERO
                } else {
                    Halo3 {
                        i_neg: target.i.lo - r.i.lo,
                        i_pos: r.i.hi - target.i.hi,
                        j_neg: target.j.lo - r.j.lo,
                        j_pos: r.j.hi - target.j.hi,
                        k_neg: target.k.lo - r.k.lo,
                        k_pos: r.k.hi - target.k.hi,
                    }
                }
            })
            .collect()
    }

    /// Renders the graph as Graphviz `dot`: stages as boxes in execution
    /// order, fields as ellipses, edges labelled with the halo extents
    /// of each read.
    pub fn to_dot(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::from("digraph stages {\n  rankdir=TB;\n");
        for (f, name, role) in self.fields.iter() {
            let style = match role {
                FieldRole::External => "filled\", fillcolor=\"lightblue",
                FieldRole::Output => "filled\", fillcolor=\"lightgreen",
                FieldRole::Intermediate => "solid",
            };
            let _ = writeln!(out, "  f{} [label=\"{}\", style=\"{}\"];", f.0, name, style);
        }
        for st in &self.stages {
            let _ = writeln!(
                out,
                "  s{} [shape=box, label=\"{}. {}\"];",
                st.id.0,
                st.id.0 + 1,
                st.name
            );
            for (f, p) in &st.inputs {
                let h = p.halo();
                let label = if h.is_zero() {
                    String::new()
                } else {
                    format!(
                        " [label=\"i{}..{} j{}..{} k{}..{}\"]",
                        -h.i_neg, h.i_pos, -h.j_neg, h.j_pos, -h.k_neg, h.k_pos
                    )
                };
                let _ = writeln!(out, "  f{} -> s{}{};", f.0, st.id.0, label);
            }
            for f in &st.outputs {
                let _ = writeln!(out, "  s{} -> f{};", st.id.0, f.0);
            }
        }
        out.push_str("}\n");
        out
    }

    /// Maximum number of simultaneously *live* non-external buffers over
    /// the stage sequence — the number of block-local scratch arrays the
    /// (3+1)D decomposition must hold in cache at once. A field is live
    /// from the stage that produces it through its last consumer
    /// (outputs stay live to the end). External inputs are streamed
    /// through the cache and not counted.
    pub fn max_live_buffers(&self) -> usize {
        let n = self.stages.len();
        let mut live_at = vec![0usize; n];
        for (f, _, role) in self.fields.iter() {
            if role == FieldRole::External {
                continue;
            }
            let Some(prod) = self.producer(f) else {
                continue;
            };
            let last = if role == FieldRole::Output {
                n - 1
            } else {
                self.stages
                    .iter()
                    .rev()
                    .find(|s| s.reads(f))
                    .map(|s| s.id.index())
                    .unwrap_or(prod.index())
            };
            for slot in live_at
                .iter_mut()
                .take(last.max(prod.index()) + 1)
                .skip(prod.index())
            {
                *slot += 1;
            }
        }
        live_at.into_iter().max().unwrap_or(1).max(1)
    }

    /// Total flops to compute one application of the whole graph over
    /// `domain` with no redundancy (the "original version" flop count).
    pub fn flops_for(&self, domain: Region3) -> f64 {
        self.stages
            .iter()
            .map(|s| s.flops_per_cell * domain.cells() as f64)
            .sum()
    }

    /// Total updated cells for one application of the whole graph over
    /// the per-stage regions `regions` (clipped upstream).
    pub fn cells_for_regions(&self, regions: &[Region3]) -> usize {
        regions.iter().map(|r| r.cells()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pattern::StencilPattern;
    use crate::region::Range1;

    /// The three-stage 1-D example from Fig. 1 of the paper:
    /// A = s1(x), B = s2(A), C = s3(B), each reading {-1, 0, +1}.
    fn fig1_graph() -> (StageGraph, FieldId) {
        let mut t = FieldTable::new();
        let x = t.add("x", FieldRole::External);
        let a = t.add("A", FieldRole::Intermediate);
        let b = t.add("B", FieldRole::Intermediate);
        let c = t.add("C", FieldRole::Output);
        let p = StencilPattern::from_offsets([(-1, 0, 0), (0, 0, 0), (1, 0, 0)]);
        let stages = vec![
            StageDef {
                id: StageId(0),
                name: "s1".into(),
                outputs: vec![a],
                inputs: vec![(x, p.clone())],
                flops_per_cell: 1.0,
            },
            StageDef {
                id: StageId(1),
                name: "s2".into(),
                outputs: vec![b],
                inputs: vec![(a, p.clone())],
                flops_per_cell: 1.0,
            },
            StageDef {
                id: StageId(2),
                name: "s3".into(),
                outputs: vec![c],
                inputs: vec![(b, p)],
                flops_per_cell: 1.0,
            },
        ];
        (StageGraph::build(t, stages).unwrap(), c)
    }

    #[test]
    fn build_validates_order() {
        let mut t = FieldTable::new();
        let x = t.add("x", FieldRole::External);
        let a = t.add("a", FieldRole::Output);
        let b = t.add("b", FieldRole::Intermediate);
        // Stage 0 reads b before stage 1 writes it.
        let stages = vec![
            StageDef {
                id: StageId(0),
                name: "s0".into(),
                outputs: vec![a],
                inputs: vec![(b, StencilPattern::point())],
                flops_per_cell: 1.0,
            },
            StageDef {
                id: StageId(1),
                name: "s1".into(),
                outputs: vec![b],
                inputs: vec![(x, StencilPattern::point())],
                flops_per_cell: 1.0,
            },
        ];
        let err = StageGraph::build(t, stages).unwrap_err();
        assert_eq!(
            err,
            BuildGraphError::ReadBeforeWrite {
                stage: StageId(0),
                field: b
            }
        );
    }

    #[test]
    fn build_rejects_external_write_and_duplicate() {
        let mut t = FieldTable::new();
        let x = t.add("x", FieldRole::External);
        let stages = vec![StageDef {
            id: StageId(0),
            name: "s0".into(),
            outputs: vec![x],
            inputs: vec![],
            flops_per_cell: 1.0,
        }];
        assert!(matches!(
            StageGraph::build(t, stages),
            Err(BuildGraphError::WriteToExternal { .. })
        ));

        let mut t = FieldTable::new();
        let y = t.add("y", FieldRole::Output);
        let stages = vec![
            StageDef {
                id: StageId(0),
                name: "s0".into(),
                outputs: vec![y],
                inputs: vec![],
                flops_per_cell: 1.0,
            },
            StageDef {
                id: StageId(1),
                name: "s1".into(),
                outputs: vec![y],
                inputs: vec![],
                flops_per_cell: 1.0,
            },
        ];
        assert!(matches!(
            StageGraph::build(t, stages),
            Err(BuildGraphError::DuplicateWrite { .. })
        ));
    }

    #[test]
    fn build_rejects_unwritten_output_and_empty() {
        let mut t = FieldTable::new();
        let _x = t.add("x", FieldRole::External);
        assert_eq!(
            StageGraph::build(t, vec![]).unwrap_err(),
            BuildGraphError::Empty
        );

        let mut t = FieldTable::new();
        let x = t.add("x", FieldRole::External);
        let o = t.add("o", FieldRole::Output);
        let i = t.add("i", FieldRole::Intermediate);
        let stages = vec![StageDef {
            id: StageId(0),
            name: "s0".into(),
            outputs: vec![i],
            inputs: vec![(x, StencilPattern::point())],
            flops_per_cell: 1.0,
        }];
        assert_eq!(
            StageGraph::build(t, stages).unwrap_err(),
            BuildGraphError::UnwrittenOutput { field: o }
        );
    }

    #[test]
    fn required_regions_grow_backward() {
        let (g, _) = fig1_graph();
        let domain = Region3::of_extent(100, 1, 1);
        let target = Region3::new(Range1::new(50, 60), Range1::new(0, 1), Range1::new(0, 1));
        let rr = g.required_regions(target, domain);
        // Stage 3 computes exactly the target; stage 2 one more on each
        // side; stage 1 two more.
        assert_eq!(rr[2].i, Range1::new(50, 60));
        assert_eq!(rr[1].i, Range1::new(49, 61));
        assert_eq!(rr[0].i, Range1::new(48, 62));
    }

    #[test]
    fn required_regions_clip_to_domain() {
        let (g, _) = fig1_graph();
        let domain = Region3::of_extent(100, 1, 1);
        let target = Region3::new(Range1::new(0, 10), Range1::new(0, 1), Range1::new(0, 1));
        let rr = g.required_regions(target, domain);
        assert_eq!(rr[0].i, Range1::new(0, 12));
        assert_eq!(rr[1].i, Range1::new(0, 11));
    }

    #[test]
    fn fig1_extra_elements_match_paper() {
        // Fig. 1(c): two processors, each owning half of the domain,
        // recompute a total of three extra elements... in the paper the
        // grid has 8 points (a..h) and CPU_B recomputes two elements while
        // CPU_A recomputes one. Our analysis counts element *updates*
        // beyond the no-redundancy schedule.
        let (g, _) = fig1_graph();
        let domain = Region3::of_extent(8, 1, 1);
        let whole: usize = g
            .required_regions(domain, domain)
            .iter()
            .map(|r| r.cells())
            .sum();
        assert_eq!(whole, 24); // 3 stages × 8 cells, no redundancy
        let halves = domain.split(crate::region::Axis::I, 2);
        let total: usize = halves
            .iter()
            .map(|h| {
                g.required_regions(*h, domain)
                    .iter()
                    .map(|r| r.cells())
                    .sum::<usize>()
            })
            .sum();
        // Each half: s3 = 4, s2 = 5, s1 = 6 → 15; two halves = 30; the
        // no-redundancy total is 24, so 6 extra element updates (3 per
        // boundary side), the paper's "three extra elements" per CPU
        // counted as updates of stages 1 and 2.
        assert_eq!(total - whole, 6);
    }

    #[test]
    fn cumulative_halos_fig1() {
        let (g, _) = fig1_graph();
        let h = g.cumulative_halos();
        assert_eq!((h[2].i_neg, h[2].i_pos), (0, 0));
        assert_eq!((h[1].i_neg, h[1].i_pos), (1, 1));
        assert_eq!((h[0].i_neg, h[0].i_pos), (2, 2));
        assert_eq!((h[0].j_neg, h[0].j_pos), (0, 0));
    }

    #[test]
    fn external_reads_cover_expanded_target() {
        let (g, _) = fig1_graph();
        let domain = Region3::of_extent(100, 1, 1);
        let target = Region3::new(Range1::new(50, 60), Range1::new(0, 1), Range1::new(0, 1));
        let ext = g.external_read_regions(target, domain);
        let x = g.fields().find("x").unwrap();
        assert_eq!(ext[&x].i, Range1::new(47, 63));
    }

    #[test]
    fn dead_stage_gets_empty_region() {
        // A stage whose output nobody needs is not required anywhere.
        let mut t = FieldTable::new();
        let x = t.add("x", FieldRole::External);
        let dead = t.add("dead", FieldRole::Intermediate);
        let out = t.add("out", FieldRole::Output);
        let stages = vec![
            StageDef {
                id: StageId(0),
                name: "dead".into(),
                outputs: vec![dead],
                inputs: vec![(x, StencilPattern::point())],
                flops_per_cell: 1.0,
            },
            StageDef {
                id: StageId(1),
                name: "live".into(),
                outputs: vec![out],
                inputs: vec![(x, StencilPattern::point())],
                flops_per_cell: 1.0,
            },
        ];
        let g = StageGraph::build(t, stages).unwrap();
        let d = Region3::of_extent(4, 4, 4);
        let rr = g.required_regions(d, d);
        assert!(rr[0].is_empty());
        assert_eq!(rr[1], d);
    }

    #[test]
    fn max_live_buffers_chain() {
        // Chain x → A → B → C: A dies when B is made, B when C is made;
        // C is the output and lives to the end. Peak: producer + consumer
        // alive together = 2.
        let (g, _) = fig1_graph();
        assert_eq!(g.max_live_buffers(), 2);
    }

    #[test]
    fn max_live_buffers_counts_long_lived_fields() {
        // A is produced first and consumed last ⇒ overlaps everything.
        let mut t = FieldTable::new();
        let x = t.add("x", FieldRole::External);
        let a = t.add("a", FieldRole::Intermediate);
        let b = t.add("b", FieldRole::Intermediate);
        let o = t.add("o", FieldRole::Output);
        let p = StencilPattern::point;
        let stages = vec![
            StageDef {
                id: StageId(0),
                name: "mk_a".into(),
                outputs: vec![a],
                inputs: vec![(x, p())],
                flops_per_cell: 1.0,
            },
            StageDef {
                id: StageId(1),
                name: "mk_b".into(),
                outputs: vec![b],
                inputs: vec![(x, p())],
                flops_per_cell: 1.0,
            },
            StageDef {
                id: StageId(2),
                name: "mk_o".into(),
                outputs: vec![o],
                inputs: vec![(a, p()), (b, p())],
                flops_per_cell: 1.0,
            },
        ];
        let g = StageGraph::build(t, stages).unwrap();
        assert_eq!(g.max_live_buffers(), 3); // a, b and o at stage 2
    }

    #[test]
    fn flops_accounting() {
        let (g, _) = fig1_graph();
        let d = Region3::of_extent(10, 1, 1);
        assert_eq!(g.flops_for(d), 30.0);
        let rr = g.required_regions(d, d);
        assert_eq!(g.cells_for_regions(&rr), 30);
    }

    #[test]
    fn dot_export_structure() {
        let (g, _) = fig1_graph();
        let dot = g.to_dot();
        assert!(dot.starts_with("digraph stages {"));
        // 4 fields, 3 stages, 3 input edges + 3 output edges.
        assert_eq!(dot.matches("shape=box").count(), 3);
        assert_eq!(dot.matches(" -> ").count(), 6);
        assert!(dot.contains("lightblue")); // external x
        assert!(dot.contains("lightgreen")); // output C
        assert!(dot.contains("i-1..1")); // halo label
        assert!(dot.trim_end().ends_with('}'));
    }

    #[test]
    fn producer_lookup() {
        let (g, c) = fig1_graph();
        assert_eq!(g.producer(c), Some(StageId(2)));
        let x = g.fields().find("x").unwrap();
        assert_eq!(g.producer(x), None);
        assert_eq!(g.output_fields(), vec![c]);
        assert_eq!(g.external_fields(), vec![x]);
    }
}
