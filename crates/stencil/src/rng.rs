//! In-repo deterministic pseudo-random number generation.
//!
//! The reproduction must build and test hermetically (no external
//! crates), and its randomized fields must be *bit-stable* across
//! platforms, toolchains and time — a test that pins a field hash today
//! has to pin the same hash in five years. Both goals rule out the
//! `rand` crate: its `StdRng` stream is explicitly allowed to change
//! between versions. Instead this module carries the two standard
//! public-domain generators used by essentially every language runtime:
//!
//! * [`SplitMix64`] — Steele, Lea & Flood's 64-bit mixer; one addition
//!   and three xor-shift-multiplies per output. Used for seeding and
//!   for cheap hashing of result streams.
//! * [`Xoshiro256pp`] — Blackman & Vigna's xoshiro256++ 1.0, the
//!   general-purpose generator (256-bit state, period 2^256 − 1),
//!   seeded from `SplitMix64` exactly as the reference C code does.
//!
//! Both are pinned against the published reference streams in this
//! module's tests, so any porting mistake fails loudly rather than
//! silently shifting every randomized field in the suite.

/// Minimal uniform-generation interface shared by the generators here.
///
/// Field generators and test rigs take `R: Rng64` so a cheap
/// [`SplitMix64`] can stand in for [`Xoshiro256pp`] where stream
/// quality does not matter.
pub trait Rng64 {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// A uniform `f64` in `[0, 1)` with the full 53 bits of mantissa
    /// (the standard `(x >> 11) · 2⁻⁵³` conversion).
    fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// A uniform `f64` in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi` or either bound is non-finite.
    fn range_f64(&mut self, lo: f64, hi: f64) -> f64 {
        assert!(
            lo < hi && lo.is_finite() && hi.is_finite(),
            "bad range [{lo}, {hi})"
        );
        lo + self.next_f64() * (hi - lo)
    }

    /// A uniform `usize` in `[0, n)` by widening multiplication
    /// (Lemire's method; the tiny modulo bias is irrelevant for test
    /// workloads and keeps the call single-shot and deterministic).
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    fn below(&mut self, n: usize) -> usize {
        assert!(n > 0, "empty range");
        (((self.next_u64() as u128) * (n as u128)) >> 64) as usize
    }

    /// A uniform bool.
    fn next_bool(&mut self) -> bool {
        self.next_u64() >> 63 == 1
    }
}

/// SplitMix64: a tiny, fast, full-period 64-bit generator.
#[derive(Clone, Debug)]
pub struct SplitMix64 {
    x: u64,
}

impl SplitMix64 {
    /// Creates a generator whose stream is a pure function of `seed`.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { x: seed }
    }

    /// Folds `v` into the state, turning the generator into a running
    /// order-sensitive hash (used to fingerprint result streams). The
    /// fully mixed output becomes the new state, so each absorbed word
    /// passes through the multiply-based finalizer — xor/add alone
    /// nearly commutes for sparse bit patterns.
    pub fn absorb(&mut self, v: u64) -> &mut Self {
        self.x ^= v;
        self.x = self.next_u64();
        self
    }
}

impl Rng64 for SplitMix64 {
    fn next_u64(&mut self) -> u64 {
        self.x = self.x.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.x;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// xoshiro256++ 1.0 — the repository's general-purpose generator.
#[derive(Clone, Debug)]
pub struct Xoshiro256pp {
    s: [u64; 4],
}

impl Xoshiro256pp {
    /// Seeds the 256-bit state from `seed` through [`SplitMix64`], as
    /// the reference implementation recommends (an all-zero state is
    /// impossible this way).
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = SplitMix64::new(seed);
        Xoshiro256pp {
            s: [sm.next_u64(), sm.next_u64(), sm.next_u64(), sm.next_u64()],
        }
    }
}

impl Rng64 for Xoshiro256pp {
    fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }
}

/// Order-sensitive 64-bit fingerprint of an `f64` slice (bit pattern of
/// every element folded through [`SplitMix64::absorb`]). Two fields are
/// bit-identical iff their fingerprints match — the primitive behind
/// the determinism pins in the top-level test suite.
pub fn hash_f64_slice(data: &[f64]) -> u64 {
    let mut h = SplitMix64::new(0x1505_1505_1505_1505 ^ data.len() as u64);
    for &v in data {
        h.absorb(v.to_bits());
    }
    h.next_u64()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Published reference stream of splitmix64 with seed 0 (also the
    /// seeding stream of xoshiro256++'s own test harness).
    #[test]
    fn splitmix64_matches_reference_vectors() {
        let mut r = SplitMix64::new(0);
        let got: Vec<u64> = (0..5).map(|_| r.next_u64()).collect();
        assert_eq!(
            got,
            vec![
                0xE220_A839_7B1D_CDAF,
                0x6E78_9E6A_A1B9_65F4,
                0x06C4_5D18_8009_454F,
                0xF88B_B8A8_724C_81EC,
                0x1B39_896A_51A8_749B,
            ]
        );
        let mut r = SplitMix64::new(1_234_567);
        assert_eq!(r.next_u64(), 0x599E_D017_FB08_FC85);
        assert_eq!(r.next_u64(), 0x2C73_F084_5854_0FA5);
    }

    /// Stream of xoshiro256++ seeded via splitmix64(42)/(0), verified
    /// against the reference C implementation.
    #[test]
    fn xoshiro256pp_matches_reference_vectors() {
        let mut r = Xoshiro256pp::seed_from_u64(42);
        let got: Vec<u64> = (0..6).map(|_| r.next_u64()).collect();
        assert_eq!(
            got,
            vec![
                0xD076_4D4F_4476_689F,
                0x519E_4174_576F_3791,
                0xFBE0_7CFB_0C24_ED8C,
                0xB37D_9F60_0CD8_35B8,
                0xCB23_1C38_7484_6A73,
                0x968D_9F00_4E50_DE7D,
            ]
        );
        let mut r = Xoshiro256pp::seed_from_u64(0);
        assert_eq!(r.next_u64(), 0x5317_5D61_490B_23DF);
        assert_eq!(r.next_u64(), 0x61DA_6F3D_C380_D507);
    }

    #[test]
    fn f64_conversion_is_unit_interval_and_deterministic() {
        let mut a = Xoshiro256pp::seed_from_u64(7);
        let mut b = Xoshiro256pp::seed_from_u64(7);
        for _ in 0..10_000 {
            let x = a.next_f64();
            assert!((0.0..1.0).contains(&x));
            assert_eq!(x.to_bits(), b.next_f64().to_bits());
        }
    }

    #[test]
    fn range_f64_respects_bounds() {
        let mut r = Xoshiro256pp::seed_from_u64(3);
        for _ in 0..10_000 {
            let x = r.range_f64(-0.25, 0.75);
            assert!((-0.25..0.75).contains(&x));
        }
    }

    #[test]
    #[should_panic(expected = "bad range")]
    fn range_f64_rejects_inverted_bounds() {
        let mut r = SplitMix64::new(0);
        let _ = r.range_f64(1.0, 1.0);
    }

    #[test]
    fn below_is_uniform_enough_and_in_range() {
        let mut r = Xoshiro256pp::seed_from_u64(11);
        let mut buckets = [0usize; 7];
        for _ in 0..70_000 {
            buckets[r.below(7)] += 1;
        }
        for (n, &b) in buckets.iter().enumerate() {
            assert!((9_000..11_000).contains(&b), "bucket {n}: {b}");
        }
    }

    #[test]
    fn hash_discriminates_order_and_content() {
        let a = hash_f64_slice(&[1.0, 2.0, 3.0]);
        let b = hash_f64_slice(&[1.0, 3.0, 2.0]);
        let c = hash_f64_slice(&[1.0, 2.0, 3.0]);
        assert_eq!(a, c);
        assert_ne!(a, b);
        // Sign and NaN payloads are part of the fingerprint.
        assert_ne!(hash_f64_slice(&[0.0]), hash_f64_slice(&[-0.0]));
        assert_ne!(hash_f64_slice(&[]), hash_f64_slice(&[0.0]));
    }
}
