//! Field identities and storage.
//!
//! A *field* is a named 3-D array participating in a stage graph — an
//! external input (loaded from main memory each time step), an
//! intermediate (ideally kept in cache under the (3+1)D decomposition), or
//! an output. [`FieldId`] is a cheap index newtype; [`FieldTable`] interns
//! names; [`FieldStore`] owns the actual [`Array3`] buffers during
//! execution.

use crate::array3::Array3;
use std::fmt;

/// Identifier of a field within one [`crate::StageGraph`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub struct FieldId(pub u32);

impl FieldId {
    /// The index as `usize`, for table lookups.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for FieldId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "field#{}", self.0)
    }
}

/// Role a field plays in a stage graph.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum FieldRole {
    /// Read-only input present in main memory before the time step.
    External,
    /// Produced and consumed within a time step.
    Intermediate,
    /// Final output written back to main memory.
    Output,
}

/// Interned field names and roles for a stage graph.
#[derive(Clone, Debug, Default)]
pub struct FieldTable {
    names: Vec<String>,
    roles: Vec<FieldRole>,
}

impl FieldTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a field and returns its id.
    ///
    /// # Panics
    ///
    /// Panics if the name is already registered.
    pub fn add(&mut self, name: &str, role: FieldRole) -> FieldId {
        assert!(
            !self.names.iter().any(|n| n == name),
            "duplicate field name {name:?}"
        );
        let id = FieldId(self.names.len() as u32);
        self.names.push(name.to_owned());
        self.roles.push(role);
        id
    }

    /// The name of `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` was not issued by this table.
    pub fn name(&self, id: FieldId) -> &str {
        &self.names[id.index()]
    }

    /// The role of `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` was not issued by this table.
    pub fn role(&self, id: FieldId) -> FieldRole {
        self.roles[id.index()]
    }

    /// Looks a field up by name.
    pub fn find(&self, name: &str) -> Option<FieldId> {
        self.names
            .iter()
            .position(|n| n == name)
            .map(|p| FieldId(p as u32))
    }

    /// Number of registered fields.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// Whether no fields are registered.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Ids of all fields with the given role.
    pub fn with_role(&self, role: FieldRole) -> Vec<FieldId> {
        (0..self.names.len() as u32)
            .map(FieldId)
            .filter(|id| self.roles[id.index()] == role)
            .collect()
    }

    /// Iterates over `(id, name, role)`.
    pub fn iter(&self) -> impl Iterator<Item = (FieldId, &str, FieldRole)> {
        self.names
            .iter()
            .zip(&self.roles)
            .enumerate()
            .map(|(n, (name, role))| (FieldId(n as u32), name.as_str(), *role))
    }
}

/// Owns the array buffers for the fields of a stage graph during one
/// execution. Buffers may cover different regions (e.g. block-local
/// scratch for intermediates vs. whole-domain externals).
///
/// Kernels typically *take* their output buffer, read their inputs through
/// [`FieldStore::get`], and *put* the output back — the move is O(1).
#[derive(Debug)]
pub struct FieldStore {
    slots: Vec<Option<Array3>>,
}

impl FieldStore {
    /// Creates a store with `n` empty slots.
    pub fn with_capacity(n: usize) -> Self {
        FieldStore {
            slots: (0..n).map(|_| None).collect(),
        }
    }

    /// Number of slots (filled or not).
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// Whether the store has no slots.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Installs `array` as the buffer for `id`, returning any previous one.
    pub fn put(&mut self, id: FieldId, array: Array3) -> Option<Array3> {
        self.slots[id.index()].replace(array)
    }

    /// Removes and returns the buffer for `id`.
    ///
    /// # Panics
    ///
    /// Panics if the slot is empty.
    pub fn take(&mut self, id: FieldId) -> Array3 {
        self.slots[id.index()]
            .take()
            .unwrap_or_else(|| panic!("field {id} has no buffer"))
    }

    /// Borrows the buffer for `id`.
    ///
    /// # Panics
    ///
    /// Panics if the slot is empty.
    pub fn get(&self, id: FieldId) -> &Array3 {
        self.slots[id.index()]
            .as_ref()
            .unwrap_or_else(|| panic!("field {id} has no buffer"))
    }

    /// Mutably borrows the buffer for `id`.
    ///
    /// # Panics
    ///
    /// Panics if the slot is empty.
    pub fn get_mut(&mut self, id: FieldId) -> &mut Array3 {
        self.slots[id.index()]
            .as_mut()
            .unwrap_or_else(|| panic!("field {id} has no buffer"))
    }

    /// Whether `id` currently has a buffer.
    pub fn has(&self, id: FieldId) -> bool {
        self.slots[id.index()].is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::region::Region3;

    #[test]
    fn table_add_and_lookup() {
        let mut t = FieldTable::new();
        let x = t.add("x", FieldRole::External);
        let f1 = t.add("f1", FieldRole::Intermediate);
        assert_eq!(t.name(x), "x");
        assert_eq!(t.role(f1), FieldRole::Intermediate);
        assert_eq!(t.find("f1"), Some(f1));
        assert_eq!(t.find("nope"), None);
        assert_eq!(t.len(), 2);
        assert_eq!(t.with_role(FieldRole::External), vec![x]);
    }

    #[test]
    #[should_panic]
    fn duplicate_name_panics() {
        let mut t = FieldTable::new();
        t.add("x", FieldRole::External);
        t.add("x", FieldRole::Output);
    }

    #[test]
    fn store_take_put_roundtrip() {
        let mut t = FieldTable::new();
        let x = t.add("x", FieldRole::External);
        let mut s = FieldStore::with_capacity(t.len());
        assert!(!s.has(x));
        s.put(x, Array3::filled(Region3::of_extent(2, 2, 2), 3.0));
        assert!(s.has(x));
        assert_eq!(s.get(x).sum(), 24.0);
        let a = s.take(x);
        assert!(!s.has(x));
        s.put(x, a);
        assert!(s.has(x));
    }

    #[test]
    #[should_panic]
    fn take_empty_slot_panics() {
        let mut s = FieldStore::with_capacity(1);
        let _ = s.take(FieldId(0));
    }

    #[test]
    fn iter_yields_all() {
        let mut t = FieldTable::new();
        t.add("a", FieldRole::External);
        t.add("b", FieldRole::Output);
        let v: Vec<_> = t.iter().map(|(_, n, _)| n.to_owned()).collect();
        assert_eq!(v, vec!["a", "b"]);
    }
}
