//! Axis-aligned index ranges and 3-D regions.
//!
//! A [`Region3`] is the basic unit of work distribution in this crate: a
//! half-open box `[i.lo, i.hi) × [j.lo, j.hi) × [k.lo, k.hi)` of grid
//! indices. Regions are closed under intersection and (outward) expansion,
//! which is exactly what the backward stage-requirement analysis in
//! [`crate::graph`] needs.
//!
//! Indices are signed (`i64`) so that a region expanded by a stencil halo
//! may temporarily extend below zero before being clipped to the domain.

use std::fmt;

/// A half-open, possibly empty range of signed grid indices `[lo, hi)`.
///
/// # Examples
///
/// ```
/// use stencil_engine::Range1;
/// let r = Range1::new(2, 10);
/// assert_eq!(r.len(), 8);
/// assert!(r.contains(2) && !r.contains(10));
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Range1 {
    /// Inclusive lower bound.
    pub lo: i64,
    /// Exclusive upper bound.
    pub hi: i64,
}

impl Range1 {
    /// Creates the range `[lo, hi)`. If `hi <= lo` the range is empty.
    #[inline]
    pub fn new(lo: i64, hi: i64) -> Self {
        Range1 { lo, hi }
    }

    /// The canonical empty range `[0, 0)`.
    #[inline]
    pub fn empty() -> Self {
        Range1 { lo: 0, hi: 0 }
    }

    /// Number of indices in the range (zero when empty).
    #[inline]
    pub fn len(self) -> usize {
        if self.hi > self.lo {
            (self.hi - self.lo) as usize
        } else {
            0
        }
    }

    /// Whether the range contains no indices.
    #[inline]
    pub fn is_empty(self) -> bool {
        self.hi <= self.lo
    }

    /// Whether `x` lies in `[lo, hi)`.
    #[inline]
    pub fn contains(self, x: i64) -> bool {
        self.lo <= x && x < self.hi
    }

    /// Whether `other` is entirely inside `self` (empty ranges are inside
    /// everything).
    #[inline]
    pub fn contains_range(self, other: Range1) -> bool {
        other.is_empty() || (self.lo <= other.lo && other.hi <= self.hi)
    }

    /// Intersection of two ranges; empty ranges are normalized to
    /// [`Range1::empty`].
    #[inline]
    pub fn intersect(self, other: Range1) -> Range1 {
        let lo = self.lo.max(other.lo);
        let hi = self.hi.min(other.hi);
        if hi <= lo {
            Range1::empty()
        } else {
            Range1 { lo, hi }
        }
    }

    /// Smallest range covering both inputs (the *hull*; gaps are filled).
    /// An empty input is the identity.
    #[inline]
    pub fn hull(self, other: Range1) -> Range1 {
        if self.is_empty() {
            other
        } else if other.is_empty() {
            self
        } else {
            Range1::new(self.lo.min(other.lo), self.hi.max(other.hi))
        }
    }

    /// Expands the range by `neg` indices downward and `pos` upward.
    /// Expanding an empty range yields an empty range.
    #[inline]
    pub fn expand(self, neg: i64, pos: i64) -> Range1 {
        if self.is_empty() {
            Range1::empty()
        } else {
            Range1::new(self.lo - neg, self.hi + pos)
        }
    }

    /// Shifts both bounds by `d`.
    #[inline]
    pub fn shift(self, d: i64) -> Range1 {
        Range1::new(self.lo + d, self.hi + d)
    }

    /// Splits the range into `parts` contiguous chunks whose lengths differ
    /// by at most one (earlier chunks receive the remainder), mirroring how
    /// the paper decomposes the MPDATA grid into equal parts.
    ///
    /// # Panics
    ///
    /// Panics if `parts == 0`.
    pub fn split(self, parts: usize) -> Vec<Range1> {
        assert!(parts > 0, "cannot split a range into zero parts");
        let n = self.len();
        let base = n / parts;
        let rem = n % parts;
        let mut out = Vec::with_capacity(parts);
        let mut lo = self.lo;
        for p in 0..parts {
            let len = base + usize::from(p < rem);
            out.push(Range1::new(lo, lo + len as i64));
            lo += len as i64;
        }
        out
    }

    /// Splits the range into chunks of at most `chunk` indices.
    ///
    /// # Panics
    ///
    /// Panics if `chunk == 0`.
    pub fn chunks(self, chunk: usize) -> Vec<Range1> {
        assert!(chunk > 0, "chunk size must be positive");
        let mut out = Vec::new();
        let mut lo = self.lo;
        while lo < self.hi {
            let hi = (lo + chunk as i64).min(self.hi);
            out.push(Range1::new(lo, hi));
            lo = hi;
        }
        out
    }
}

impl fmt::Debug for Range1 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}, {})", self.lo, self.hi)
    }
}

impl fmt::Display for Range1 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}, {})", self.lo, self.hi)
    }
}

/// The three grid axes of an MPDATA-style domain.
///
/// The array layout (see [`crate::Array3`]) makes `K` the fastest-varying
/// axis, so partitioning along [`Axis::I`] yields fully contiguous parts
/// and partitioning along [`Axis::J`] yields plane-contiguous parts —
/// exactly the "first and second dimensions" restriction from the paper.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub enum Axis {
    /// First (slowest-varying) dimension.
    I,
    /// Second dimension.
    J,
    /// Third (fastest-varying, contiguous) dimension.
    K,
}

impl Axis {
    /// All three axes in storage order.
    pub const ALL: [Axis; 3] = [Axis::I, Axis::J, Axis::K];

    /// Index of the axis in `(i, j, k)` order.
    #[inline]
    pub fn index(self) -> usize {
        match self {
            Axis::I => 0,
            Axis::J => 1,
            Axis::K => 2,
        }
    }
}

impl fmt::Display for Axis {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Axis::I => write!(f, "i"),
            Axis::J => write!(f, "j"),
            Axis::K => write!(f, "k"),
        }
    }
}

/// A half-open axis-aligned 3-D box of grid indices.
///
/// # Examples
///
/// ```
/// use stencil_engine::Region3;
/// let dom = Region3::of_extent(8, 4, 2);
/// assert_eq!(dom.cells(), 64);
/// let inner = dom.expand_uniform(-1);
/// assert_eq!(inner.cells(), 6 * 2 * 0); // k collapses to empty
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct Region3 {
    /// Range along the first axis.
    pub i: Range1,
    /// Range along the second axis.
    pub j: Range1,
    /// Range along the third axis.
    pub k: Range1,
}

impl Region3 {
    /// Creates a region from three ranges.
    #[inline]
    pub fn new(i: Range1, j: Range1, k: Range1) -> Self {
        Region3 { i, j, k }
    }

    /// The region `[0, ni) × [0, nj) × [0, nk)`.
    #[inline]
    pub fn of_extent(ni: usize, nj: usize, nk: usize) -> Self {
        Region3 {
            i: Range1::new(0, ni as i64),
            j: Range1::new(0, nj as i64),
            k: Range1::new(0, nk as i64),
        }
    }

    /// The canonical empty region.
    #[inline]
    pub fn empty() -> Self {
        Region3 {
            i: Range1::empty(),
            j: Range1::empty(),
            k: Range1::empty(),
        }
    }

    /// Range along `axis`.
    #[inline]
    pub fn range(self, axis: Axis) -> Range1 {
        match axis {
            Axis::I => self.i,
            Axis::J => self.j,
            Axis::K => self.k,
        }
    }

    /// Returns a copy with the range along `axis` replaced.
    #[inline]
    pub fn with_range(mut self, axis: Axis, r: Range1) -> Self {
        match axis {
            Axis::I => self.i = r,
            Axis::J => self.j = r,
            Axis::K => self.k = r,
        }
        self
    }

    /// Number of cells in the region.
    #[inline]
    pub fn cells(self) -> usize {
        self.i.len() * self.j.len() * self.k.len()
    }

    /// Whether the region contains no cells.
    #[inline]
    pub fn is_empty(self) -> bool {
        self.i.is_empty() || self.j.is_empty() || self.k.is_empty()
    }

    /// Whether the point `(i, j, k)` lies inside.
    #[inline]
    pub fn contains(self, i: i64, j: i64, k: i64) -> bool {
        self.i.contains(i) && self.j.contains(j) && self.k.contains(k)
    }

    /// Whether `other` lies entirely inside `self`.
    #[inline]
    pub fn contains_region(self, other: Region3) -> bool {
        other.is_empty()
            || (self.i.contains_range(other.i)
                && self.j.contains_range(other.j)
                && self.k.contains_range(other.k))
    }

    /// Intersection of two regions.
    #[inline]
    pub fn intersect(self, other: Region3) -> Region3 {
        let r = Region3 {
            i: self.i.intersect(other.i),
            j: self.j.intersect(other.j),
            k: self.k.intersect(other.k),
        };
        if r.is_empty() {
            Region3::empty()
        } else {
            r
        }
    }

    /// Smallest box covering both regions (gaps filled). Empty inputs are
    /// identities.
    #[inline]
    pub fn hull(self, other: Region3) -> Region3 {
        if self.is_empty() {
            other
        } else if other.is_empty() {
            self
        } else {
            Region3 {
                i: self.i.hull(other.i),
                j: self.j.hull(other.j),
                k: self.k.hull(other.k),
            }
        }
    }

    /// Expands the region outward by a [`Halo3`]. Negative components
    /// shrink the region. Empty regions stay empty.
    #[inline]
    pub fn expand(self, halo: Halo3) -> Region3 {
        if self.is_empty() {
            return Region3::empty();
        }
        let r = Region3 {
            i: self.i.expand(halo.i_neg, halo.i_pos),
            j: self.j.expand(halo.j_neg, halo.j_pos),
            k: self.k.expand(halo.k_neg, halo.k_pos),
        };
        if r.is_empty() {
            Region3::empty()
        } else {
            r
        }
    }

    /// Expands uniformly by `d` in every direction (negative `d` shrinks).
    #[inline]
    pub fn expand_uniform(self, d: i64) -> Region3 {
        self.expand(Halo3 {
            i_neg: d,
            i_pos: d,
            j_neg: d,
            j_pos: d,
            k_neg: d,
            k_pos: d,
        })
    }

    /// Whether the two regions share at least one cell.
    #[inline]
    pub fn overlaps(self, other: Region3) -> bool {
        !self.intersect(other).is_empty()
    }

    /// Splits the region along `axis` into `parts` near-equal sub-regions.
    ///
    /// # Panics
    ///
    /// Panics if `parts == 0`.
    pub fn split(self, axis: Axis, parts: usize) -> Vec<Region3> {
        self.range(axis)
            .split(parts)
            .into_iter()
            .map(|r| self.with_range(axis, r))
            .collect()
    }

    /// Splits along `axis` into chunks of at most `chunk` indices.
    ///
    /// # Panics
    ///
    /// Panics if `chunk == 0`.
    pub fn chunks(self, axis: Axis, chunk: usize) -> Vec<Region3> {
        self.range(axis)
            .chunks(chunk)
            .into_iter()
            .map(|r| self.with_range(axis, r))
            .collect()
    }

    /// Set difference `self ∖ other` as up to six disjoint boxes (slab
    /// decomposition: i-slabs below/above the cut, then j-slabs, then
    /// k-slabs). Returns `[self]` when the regions do not overlap and
    /// `[]` when `other` covers `self`.
    pub fn subtract(self, other: Region3) -> Vec<Region3> {
        let mut out = Vec::new();
        self.subtract_each(other, |r| out.push(r));
        out
    }

    /// Allocation-free [`Region3::subtract`]: calls `f` once per
    /// difference box, in the same slab order. Execution hot loops use
    /// this to peel boundary shells without touching the heap.
    pub fn subtract_each(self, other: Region3, mut f: impl FnMut(Region3)) {
        let cut = self.intersect(other);
        if cut.is_empty() {
            if !self.is_empty() {
                f(self);
            }
            return;
        }
        let mut push = |r: Region3| {
            if !r.is_empty() {
                f(r);
            }
        };
        // i-slabs outside the cut, spanning full j × k of self.
        push(Region3::new(
            Range1::new(self.i.lo, cut.i.lo),
            self.j,
            self.k,
        ));
        push(Region3::new(
            Range1::new(cut.i.hi, self.i.hi),
            self.j,
            self.k,
        ));
        // Within the cut's i-range: j-slabs spanning full k.
        push(Region3::new(
            cut.i,
            Range1::new(self.j.lo, cut.j.lo),
            self.k,
        ));
        push(Region3::new(
            cut.i,
            Range1::new(cut.j.hi, self.j.hi),
            self.k,
        ));
        // Within the cut's i×j: k-slabs.
        push(Region3::new(cut.i, cut.j, Range1::new(self.k.lo, cut.k.lo)));
        push(Region3::new(cut.i, cut.j, Range1::new(cut.k.hi, self.k.hi)));
    }

    /// Iterates over all `(i, j, k)` points, `k` fastest.
    pub fn points(self) -> impl Iterator<Item = (i64, i64, i64)> {
        let (j, k) = (self.j, self.k);
        (self.i.lo..self.i.hi).flat_map(move |i| {
            (j.lo..j.hi).flat_map(move |jj| (k.lo..k.hi).map(move |kk| (i, jj, kk)))
        })
    }
}

impl fmt::Debug for Region3 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:?}×{:?}×{:?}", self.i, self.j, self.k)
    }
}

impl fmt::Display for Region3 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}×{}×{}", self.i, self.j, self.k)
    }
}

/// Per-direction halo widths of a stencil pattern or accumulated
/// requirement: how far reads reach below (`*_neg`) and above (`*_pos`)
/// the written cell along each axis. All components are non-negative for
/// halos derived from patterns.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default)]
pub struct Halo3 {
    /// Reach toward lower `i`.
    pub i_neg: i64,
    /// Reach toward higher `i`.
    pub i_pos: i64,
    /// Reach toward lower `j`.
    pub j_neg: i64,
    /// Reach toward higher `j`.
    pub j_pos: i64,
    /// Reach toward lower `k`.
    pub k_neg: i64,
    /// Reach toward higher `k`.
    pub k_pos: i64,
}

impl Halo3 {
    /// The zero halo (pointwise access).
    pub const ZERO: Halo3 = Halo3 {
        i_neg: 0,
        i_pos: 0,
        j_neg: 0,
        j_pos: 0,
        k_neg: 0,
        k_pos: 0,
    };

    /// Uniform halo of width `w` in every direction.
    #[inline]
    pub fn uniform(w: i64) -> Self {
        Halo3 {
            i_neg: w,
            i_pos: w,
            j_neg: w,
            j_pos: w,
            k_neg: w,
            k_pos: w,
        }
    }

    /// Component-wise maximum (union of reaches).
    #[inline]
    pub fn max(self, o: Halo3) -> Halo3 {
        Halo3 {
            i_neg: self.i_neg.max(o.i_neg),
            i_pos: self.i_pos.max(o.i_pos),
            j_neg: self.j_neg.max(o.j_neg),
            j_pos: self.j_pos.max(o.j_pos),
            k_neg: self.k_neg.max(o.k_neg),
            k_pos: self.k_pos.max(o.k_pos),
        }
    }

    /// Component-wise sum (composition of two dependency steps).
    #[inline]
    pub fn plus(self, o: Halo3) -> Halo3 {
        Halo3 {
            i_neg: self.i_neg + o.i_neg,
            i_pos: self.i_pos + o.i_pos,
            j_neg: self.j_neg + o.j_neg,
            j_pos: self.j_pos + o.j_pos,
            k_neg: self.k_neg + o.k_neg,
            k_pos: self.k_pos + o.k_pos,
        }
    }

    /// Reach (neg, pos) along `axis`.
    #[inline]
    pub fn along(self, axis: Axis) -> (i64, i64) {
        match axis {
            Axis::I => (self.i_neg, self.i_pos),
            Axis::J => (self.j_neg, self.j_pos),
            Axis::K => (self.k_neg, self.k_pos),
        }
    }

    /// Whether every component is zero.
    #[inline]
    pub fn is_zero(self) -> bool {
        self == Halo3::ZERO
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn range_basic_ops() {
        let r = Range1::new(3, 9);
        assert_eq!(r.len(), 6);
        assert!(!r.is_empty());
        assert!(r.contains(3));
        assert!(r.contains(8));
        assert!(!r.contains(9));
        assert!(!r.contains(2));
    }

    #[test]
    fn range_empty_is_normalized() {
        let e = Range1::new(5, 5);
        assert!(e.is_empty());
        assert_eq!(e.len(), 0);
        let e2 = Range1::new(7, 3);
        assert!(e2.is_empty());
        assert_eq!(e2.intersect(Range1::new(0, 10)), Range1::empty());
    }

    #[test]
    fn range_intersect_and_hull() {
        let a = Range1::new(0, 10);
        let b = Range1::new(5, 15);
        assert_eq!(a.intersect(b), Range1::new(5, 10));
        assert_eq!(a.hull(b), Range1::new(0, 15));
        let c = Range1::new(20, 30);
        assert!(a.intersect(c).is_empty());
        assert_eq!(a.hull(c), Range1::new(0, 30));
        assert_eq!(a.hull(Range1::empty()), a);
        assert_eq!(Range1::empty().hull(a), a);
    }

    #[test]
    fn range_expand_and_shift() {
        let r = Range1::new(4, 8);
        assert_eq!(r.expand(2, 3), Range1::new(2, 11));
        assert_eq!(r.shift(-4), Range1::new(0, 4));
        assert!(Range1::empty().expand(5, 5).is_empty());
    }

    #[test]
    fn range_split_covers_exactly() {
        let r = Range1::new(0, 14);
        let parts = r.split(4);
        assert_eq!(parts.len(), 4);
        // Lengths 4,4,3,3.
        assert_eq!(
            parts.iter().map(|p| p.len()).collect::<Vec<_>>(),
            vec![4, 4, 3, 3]
        );
        // Contiguous cover.
        assert_eq!(parts[0].lo, 0);
        for w in parts.windows(2) {
            assert_eq!(w[0].hi, w[1].lo);
        }
        assert_eq!(parts.last().unwrap().hi, 14);
    }

    #[test]
    fn range_split_more_parts_than_len() {
        let parts = Range1::new(0, 2).split(5);
        assert_eq!(parts.iter().map(|p| p.len()).sum::<usize>(), 2);
        assert_eq!(parts.len(), 5);
    }

    #[test]
    fn range_chunks() {
        let r = Range1::new(0, 10);
        let cs = r.chunks(4);
        assert_eq!(cs.len(), 3);
        assert_eq!(cs[2], Range1::new(8, 10));
    }

    #[test]
    fn region_cells_and_contains() {
        let r = Region3::of_extent(4, 3, 2);
        assert_eq!(r.cells(), 24);
        assert!(r.contains(0, 0, 0));
        assert!(r.contains(3, 2, 1));
        assert!(!r.contains(4, 0, 0));
        assert!(!r.contains(0, 0, -1));
    }

    #[test]
    fn region_intersect_empty_normalized() {
        let a = Region3::of_extent(4, 4, 4);
        let b = Region3::new(Range1::new(10, 12), Range1::new(0, 4), Range1::new(0, 4));
        assert_eq!(a.intersect(b), Region3::empty());
        assert!(!a.overlaps(b));
    }

    #[test]
    fn region_expand_and_clip() {
        let dom = Region3::of_extent(8, 8, 8);
        let inner = Region3::new(Range1::new(2, 4), Range1::new(2, 4), Range1::new(2, 4));
        let h = Halo3 {
            i_neg: 3,
            i_pos: 1,
            ..Halo3::ZERO
        };
        let e = inner.expand(h);
        assert_eq!(e.i, Range1::new(-1, 5));
        let clipped = e.intersect(dom);
        assert_eq!(clipped.i, Range1::new(0, 5));
        assert_eq!(clipped.j, inner.j);
    }

    #[test]
    fn region_split_is_partition() {
        let dom = Region3::of_extent(10, 6, 4);
        let parts = dom.split(Axis::J, 4);
        assert_eq!(parts.iter().map(|p| p.cells()).sum::<usize>(), dom.cells());
        for (a, b) in parts.iter().zip(parts.iter().skip(1)) {
            assert!(!a.overlaps(*b));
        }
    }

    #[test]
    fn region_points_order_k_fastest() {
        let r = Region3::new(Range1::new(0, 2), Range1::new(0, 1), Range1::new(0, 2));
        let pts: Vec<_> = r.points().collect();
        assert_eq!(pts, vec![(0, 0, 0), (0, 0, 1), (1, 0, 0), (1, 0, 1)]);
    }

    #[test]
    fn halo_ops() {
        let a = Halo3 {
            i_neg: 1,
            i_pos: 0,
            j_neg: 2,
            j_pos: 1,
            k_neg: 0,
            k_pos: 0,
        };
        let b = Halo3::uniform(1);
        let m = a.max(b);
        assert_eq!(m.j_neg, 2);
        assert_eq!(m.i_pos, 1);
        let s = a.plus(b);
        assert_eq!(s.j_neg, 3);
        assert_eq!(s.k_pos, 1);
        assert!(Halo3::ZERO.is_zero());
        assert!(!b.is_zero());
    }

    #[test]
    fn region_hull() {
        let a = Region3::of_extent(2, 2, 2);
        let b = Region3::new(Range1::new(5, 6), Range1::new(0, 1), Range1::new(0, 1));
        let h = a.hull(b);
        assert_eq!(h.i, Range1::new(0, 6));
        assert_eq!(h.j, Range1::new(0, 2));
        assert_eq!(a.hull(Region3::empty()), a);
    }

    #[test]
    fn subtract_disjoint_and_covering_cases() {
        let a = Region3::of_extent(4, 4, 4);
        let far = Region3::new(Range1::new(9, 12), a.j, a.k);
        assert_eq!(a.subtract(far), vec![a]);
        let all = Region3::new(Range1::new(-1, 5), Range1::new(-1, 5), Range1::new(-1, 5));
        assert!(a.subtract(all).is_empty());
        assert!(Region3::empty().subtract(a).is_empty());
    }

    #[test]
    fn subtract_interior_hole_yields_six_shells() {
        let a = Region3::of_extent(6, 6, 6);
        let hole = Region3::new(Range1::new(2, 4), Range1::new(2, 4), Range1::new(2, 4));
        let parts = a.subtract(hole);
        assert_eq!(parts.len(), 6);
        let total: usize = parts.iter().map(|p| p.cells()).sum();
        assert_eq!(total, a.cells() - hole.cells());
        for (n, p) in parts.iter().enumerate() {
            assert!(!p.overlaps(hole), "part {n} overlaps the hole");
            assert!(a.contains_region(*p));
            for q in &parts[n + 1..] {
                assert!(!p.overlaps(*q), "parts overlap each other");
            }
        }
    }

    #[test]
    fn subtract_edge_cut() {
        let a = Region3::of_extent(8, 4, 4);
        let cut = Region3::new(Range1::new(0, 3), a.j, a.k);
        let parts = a.subtract(cut);
        assert_eq!(parts.len(), 1);
        assert_eq!(parts[0].i, Range1::new(3, 8));
    }

    #[test]
    fn axis_roundtrip() {
        for ax in Axis::ALL {
            assert_eq!(Axis::ALL[ax.index()], ax);
        }
        assert_eq!(format!("{}", Axis::I), "i");
    }
}
