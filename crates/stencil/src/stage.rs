//! Stage definitions: one heterogeneous stencil kernel of a time step.
//!
//! A [`StageDef`] describes the *shape* of a kernel — which fields it
//! writes, which fields it reads with which [`StencilPattern`], and its
//! arithmetic intensity — without fixing the arithmetic itself. The actual
//! numerics are supplied at execution time through a [`Kernel`]
//! implementation looked up by [`StageId`]; this split is what lets one
//! dependency analysis serve the real executor, the extra-element counter
//! and the trace generator for the NUMA simulator.

use crate::field::{FieldId, FieldStore};
use crate::pattern::StencilPattern;
use crate::region::{Halo3, Region3};
use std::fmt;

/// Index of a stage within its [`crate::StageGraph`], in execution order.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub struct StageId(pub u32);

impl StageId {
    /// The index as `usize`.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for StageId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "stage#{}", self.0)
    }
}

/// Declarative description of one stencil stage.
#[derive(Clone, Debug)]
pub struct StageDef {
    /// Stage index in execution order.
    pub id: StageId,
    /// Human-readable kernel name (e.g. `"flux_i"`).
    pub name: String,
    /// Fields written by the kernel, each over the stage's compute region.
    pub outputs: Vec<FieldId>,
    /// Fields read, with the offset pattern used for each.
    pub inputs: Vec<(FieldId, StencilPattern)>,
    /// Floating-point operations per updated cell, used by the performance
    /// model.
    pub flops_per_cell: f64,
}

impl StageDef {
    /// The union of input halos: how far this stage reads beyond the
    /// region it writes.
    pub fn input_halo(&self) -> Halo3 {
        self.inputs
            .iter()
            .fold(Halo3::ZERO, |h, (_, p)| h.max(p.halo()))
    }

    /// The pattern with which this stage reads `field`, if it reads it.
    /// If a field appears several times, the union pattern is returned.
    pub fn pattern_for(&self, field: FieldId) -> Option<StencilPattern> {
        let mut acc: Option<StencilPattern> = None;
        for (f, p) in &self.inputs {
            if *f == field {
                acc = Some(match acc {
                    Some(a) => a.union(p),
                    None => p.clone(),
                });
            }
        }
        acc
    }

    /// Whether this stage writes `field`.
    pub fn writes(&self, field: FieldId) -> bool {
        self.outputs.contains(&field)
    }

    /// Whether this stage reads `field`.
    pub fn reads(&self, field: FieldId) -> bool {
        self.inputs.iter().any(|(f, _)| *f == field)
    }
}

/// Executable numerics for one stage.
///
/// The kernel must write exactly the cells of `region` in every output
/// buffer and read inputs only at offsets declared by the matching
/// [`StageDef`] — the property tests in the `mpdata` crate enforce this by
/// comparing against declared patterns.
pub trait Kernel: Send + Sync {
    /// Applies the stage to `region`, reading and writing buffers in
    /// `store` at global coordinates.
    ///
    /// # Panics
    ///
    /// Implementations may panic if `store` lacks a required buffer or a
    /// buffer does not cover the region implied by the stage's patterns.
    fn apply(&self, store: &mut FieldStore, region: Region3);
}

impl<F> Kernel for F
where
    F: Fn(&mut FieldStore, Region3) + Send + Sync,
{
    fn apply(&self, store: &mut FieldStore, region: Region3) {
        self(store, region)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::field::{FieldRole, FieldTable};
    use crate::region::Range1;

    fn two_field_stage() -> (FieldTable, StageDef) {
        let mut t = FieldTable::new();
        let x = t.add("x", FieldRole::External);
        let u = t.add("u", FieldRole::External);
        let f = t.add("f", FieldRole::Intermediate);
        let def = StageDef {
            id: StageId(0),
            name: "flux_i".into(),
            outputs: vec![f],
            inputs: vec![
                (x, StencilPattern::from_offsets([(0, 0, 0), (-1, 0, 0)])),
                (u, StencilPattern::point()),
            ],
            flops_per_cell: 5.0,
        };
        (t, def)
    }

    #[test]
    fn input_halo_is_union() {
        let (_, def) = two_field_stage();
        let h = def.input_halo();
        assert_eq!(h.i_neg, 1);
        assert_eq!(h.i_pos, 0);
        assert_eq!(h.j_neg, 0);
    }

    #[test]
    fn pattern_for_and_reads_writes() {
        let (t, def) = two_field_stage();
        let x = t.find("x").unwrap();
        let f = t.find("f").unwrap();
        assert!(def.reads(x));
        assert!(!def.reads(f));
        assert!(def.writes(f));
        assert!(!def.writes(x));
        let p = def.pattern_for(x).unwrap();
        assert_eq!(p.len(), 2);
        assert!(def.pattern_for(f).is_none());
    }

    #[test]
    fn pattern_for_unions_duplicates() {
        let mut t = FieldTable::new();
        let x = t.add("x", FieldRole::External);
        let y = t.add("y", FieldRole::Output);
        let def = StageDef {
            id: StageId(0),
            name: "s".into(),
            outputs: vec![y],
            inputs: vec![
                (x, StencilPattern::from_offsets([(-1, 0, 0)])),
                (x, StencilPattern::from_offsets([(1, 0, 0)])),
            ],
            flops_per_cell: 1.0,
        };
        let p = def.pattern_for(x).unwrap();
        assert_eq!(p.len(), 2);
        assert_eq!(p.halo().i_neg, 1);
        assert_eq!(p.halo().i_pos, 1);
    }

    #[test]
    fn closure_kernel_applies() {
        use crate::array3::Array3;
        let (t, _) = two_field_stage();
        let x = t.find("x").unwrap();
        let mut store = FieldStore::with_capacity(t.len());
        store.put(x, Array3::filled(Region3::of_extent(2, 2, 2), 1.0));
        let kernel = |s: &mut FieldStore, r: Region3| {
            let mut a = s.take(FieldId(0));
            for (i, j, k) in r.points() {
                a.set(i, j, k, 2.0);
            }
            s.put(FieldId(0), a);
        };
        let region = Region3::new(Range1::new(0, 1), Range1::new(0, 2), Range1::new(0, 2));
        Kernel::apply(&kernel, &mut store, region);
        assert_eq!(store.get(x).sum(), 4.0 * 2.0 + 4.0 * 1.0);
    }
}
