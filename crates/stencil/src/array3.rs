//! Dense 3-D arrays with MPDATA-style storage layout.
//!
//! The element at `(i, j, k)` lives at linear offset
//! `((i - base.i) * nj + (j - base.j)) * nk + (k - base.k)`, i.e. `k` is the
//! fastest-varying (contiguous) axis. An [`Array3`] may cover an arbitrary
//! [`Region3`] (not necessarily starting at the origin), which is how
//! block-local scratch arrays for the (3+1)D decomposition and enlarged
//! island sub-domains are represented without index translation at every
//! kernel site.

use crate::region::Region3;
use std::fmt;

/// A dense 3-D array of `f64` covering a [`Region3`] of the global index
/// space.
///
/// Indexing uses *global* coordinates; the array internally subtracts its
/// region origin. Out-of-region accesses panic in debug builds through the
/// slice bounds check (the linear offset is computed without per-axis
/// checks in release builds, so callers must respect [`Array3::region`]).
///
/// # Examples
///
/// ```
/// use stencil_engine::{Array3, Region3};
/// let mut a = Array3::zeros(Region3::of_extent(4, 4, 4));
/// a.set(1, 2, 3, 7.5);
/// assert_eq!(a.get(1, 2, 3), 7.5);
/// assert_eq!(a.get(0, 0, 0), 0.0);
/// ```
#[derive(Clone, PartialEq)]
pub struct Array3 {
    region: Region3,
    nj: i64,
    nk: i64,
    data: Vec<f64>,
}

impl Array3 {
    /// Creates an array covering `region`, filled with zeros.
    ///
    /// # Panics
    ///
    /// Panics if `region` is empty.
    pub fn zeros(region: Region3) -> Self {
        Self::filled(region, 0.0)
    }

    /// Creates an array covering `region`, filled with `value`.
    ///
    /// # Panics
    ///
    /// Panics if `region` is empty.
    pub fn filled(region: Region3, value: f64) -> Self {
        assert!(!region.is_empty(), "cannot allocate an empty Array3");
        Array3 {
            region,
            nj: region.j.len() as i64,
            nk: region.k.len() as i64,
            data: vec![value; region.cells()],
        }
    }

    /// Creates an array by evaluating `f(i, j, k)` at every point of
    /// `region` (global coordinates).
    ///
    /// # Panics
    ///
    /// Panics if `region` is empty.
    pub fn from_fn(region: Region3, mut f: impl FnMut(i64, i64, i64) -> f64) -> Self {
        let mut a = Self::zeros(region);
        for i in region.i.lo..region.i.hi {
            for j in region.j.lo..region.j.hi {
                for k in region.k.lo..region.k.hi {
                    let idx = a.offset(i, j, k);
                    a.data[idx] = f(i, j, k);
                }
            }
        }
        a
    }

    /// The region of global index space this array covers.
    #[inline]
    pub fn region(&self) -> Region3 {
        self.region
    }

    /// Re-targets the array at `region`, reusing the existing
    /// allocation — the per-tile scratch shrink of the tile-fused
    /// replay, which must not allocate on the steady-state path.
    ///
    /// The contents are *not* cleared: cells keep whatever bytes the
    /// previous region left at the same linear offsets, so callers must
    /// write (or explicitly zero) every cell they read. The debug trace
    /// key is the data pointer, which survives a rebase — access
    /// tracing follows the buffer, not the region.
    ///
    /// # Panics
    ///
    /// Panics if `region` is empty or holds more cells than the
    /// original allocation.
    pub fn rebase(&mut self, region: Region3) {
        assert!(!region.is_empty(), "cannot rebase to an empty region");
        assert!(
            region.cells() <= self.data.len(),
            "rebase target {:?} needs {} cells but the allocation holds {}",
            region,
            region.cells(),
            self.data.len()
        );
        self.region = region;
        self.nj = region.j.len() as i64;
        self.nk = region.k.len() as i64;
    }

    /// Number of elements.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the array holds no elements (never true for a constructed
    /// array, but provided for API completeness).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Linear offset of global coordinates `(i, j, k)`.
    #[inline(always)]
    fn offset(&self, i: i64, j: i64, k: i64) -> usize {
        debug_assert!(
            self.region.contains(i, j, k),
            "index ({i},{j},{k}) outside array region {:?}",
            self.region
        );
        (((i - self.region.i.lo) * self.nj + (j - self.region.j.lo)) * self.nk
            + (k - self.region.k.lo)) as usize
    }

    /// The key under which debug access tracing logs this array (see
    /// [`crate::trace`]).
    #[cfg(debug_assertions)]
    #[inline(always)]
    fn trace_key(&self) -> crate::trace::ArrayKey {
        self.data.as_ptr() as crate::trace::ArrayKey
    }

    /// Reads the element at global coordinates `(i, j, k)`.
    #[inline(always)]
    pub fn get(&self, i: i64, j: i64, k: i64) -> f64 {
        #[cfg(debug_assertions)]
        crate::trace::on_read(self.trace_key(), i, j, k);
        self.data[self.offset(i, j, k)]
    }

    /// Writes the element at global coordinates `(i, j, k)`.
    #[inline(always)]
    pub fn set(&mut self, i: i64, j: i64, k: i64, v: f64) {
        #[cfg(debug_assertions)]
        crate::trace::on_write(self.trace_key(), i, j, k);
        let o = self.offset(i, j, k);
        self.data[o] = v;
    }

    /// Borrow of the raw storage in layout order.
    #[inline]
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Mutable borrow of the raw storage in layout order.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Fills the whole array with `value`.
    pub fn fill(&mut self, value: f64) {
        self.data.fill(value);
    }

    /// Sum of all elements within `sub` (clipped to this array's region).
    pub fn sum_region(&self, sub: Region3) -> f64 {
        let r = self.region.intersect(sub);
        let mut s = 0.0;
        for i in r.i.lo..r.i.hi {
            for j in r.j.lo..r.j.hi {
                for k in r.k.lo..r.k.hi {
                    s += self.get(i, j, k);
                }
            }
        }
        s
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f64 {
        self.data.iter().sum()
    }

    /// Minimum element (NaN-poisoned inputs yield unspecified results).
    pub fn min(&self) -> f64 {
        self.data.iter().copied().fold(f64::INFINITY, f64::min)
    }

    /// Maximum element.
    pub fn max(&self) -> f64 {
        self.data.iter().copied().fold(f64::NEG_INFINITY, f64::max)
    }

    /// Copies the elements of `src` within `sub` into `self`. `sub` is
    /// clipped to the intersection of both arrays' regions.
    pub fn copy_region_from(&mut self, src: &Array3, sub: Region3) {
        let r = self.region.intersect(src.region).intersect(sub);
        for i in r.i.lo..r.i.hi {
            for j in r.j.lo..r.j.hi {
                // Copy contiguous k-rows.
                let d0 = self.offset(i, j, r.k.lo);
                let s0 = src.offset(i, j, r.k.lo);
                let n = r.k.len();
                self.data[d0..d0 + n].copy_from_slice(&src.data[s0..s0 + n]);
            }
        }
    }

    /// Largest absolute element-wise difference on the intersection of the
    /// two regions.
    pub fn max_abs_diff(&self, other: &Array3) -> f64 {
        let r = self.region.intersect(other.region);
        let mut m: f64 = 0.0;
        for i in r.i.lo..r.i.hi {
            for j in r.j.lo..r.j.hi {
                for k in r.k.lo..r.k.hi {
                    m = m.max((self.get(i, j, k) - other.get(i, j, k)).abs());
                }
            }
        }
        m
    }

    /// Borrows the contiguous `k`-row of cells `(i, j, kr)` (global
    /// coordinates).
    ///
    /// # Panics
    ///
    /// Panics (in debug builds, via the offset check) if the row is not
    /// fully inside the array's region; `kr` must be non-empty.
    #[inline]
    pub fn row(&self, i: i64, j: i64, kr: crate::region::Range1) -> &[f64] {
        #[cfg(debug_assertions)]
        crate::trace::on_read_row(self.trace_key(), i, j, kr);
        let o = self.offset(i, j, kr.lo);
        &self.data[o..o + kr.len()]
    }

    /// Mutably borrows the contiguous `k`-row of cells `(i, j, kr)`.
    ///
    /// # Panics
    ///
    /// Same conditions as [`Array3::row`].
    #[inline]
    pub fn row_mut(&mut self, i: i64, j: i64, kr: crate::region::Range1) -> &mut [f64] {
        #[cfg(debug_assertions)]
        crate::trace::on_write_row(self.trace_key(), i, j, kr);
        let o = self.offset(i, j, kr.lo);
        &mut self.data[o..o + kr.len()]
    }

    /// Iterates over `(i, j, k, value)` in layout order.
    pub fn iter_indexed(&self) -> impl Iterator<Item = (i64, i64, i64, f64)> + '_ {
        self.region
            .points()
            .map(|(i, j, k)| (i, j, k, self.get(i, j, k)))
    }
}

impl fmt::Debug for Array3 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Array3 {{ region: {:?}, len: {} }}",
            self.region,
            self.data.len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::region::Range1;

    #[test]
    fn zeros_and_set_get() {
        let mut a = Array3::zeros(Region3::of_extent(3, 4, 5));
        assert_eq!(a.len(), 60);
        a.set(2, 3, 4, 1.5);
        assert_eq!(a.get(2, 3, 4), 1.5);
        assert_eq!(a.get(0, 0, 0), 0.0);
    }

    #[test]
    fn offset_base_region() {
        // Array covering a region that does not start at the origin.
        let r = Region3::new(Range1::new(10, 13), Range1::new(-2, 2), Range1::new(5, 7));
        let a = Array3::from_fn(r, |i, j, k| (i * 100 + j * 10 + k) as f64);
        assert_eq!(a.get(10, -2, 5), 1000.0 - 20.0 + 5.0);
        assert_eq!(a.get(12, 1, 6), 1216.0);
    }

    #[test]
    fn layout_k_fastest() {
        let a = Array3::from_fn(Region3::of_extent(2, 2, 3), |i, j, k| {
            (i * 6 + j * 3 + k) as f64
        });
        // Linear order must equal enumeration order with k fastest.
        let expect: Vec<f64> = (0..12).map(|v| v as f64).collect();
        assert_eq!(a.as_slice(), expect.as_slice());
    }

    #[test]
    fn sum_min_max() {
        let a = Array3::from_fn(Region3::of_extent(2, 2, 2), |i, j, k| (i + j + k) as f64);
        assert_eq!(a.sum(), 0.0 + 1.0 + 1.0 + 2.0 + 1.0 + 2.0 + 2.0 + 3.0);
        assert_eq!(a.min(), 0.0);
        assert_eq!(a.max(), 3.0);
    }

    #[test]
    fn sum_region_clips() {
        let a = Array3::filled(Region3::of_extent(4, 4, 4), 1.0);
        let sub = Region3::new(Range1::new(2, 10), Range1::new(0, 2), Range1::new(0, 4));
        assert_eq!(a.sum_region(sub), (2 * 2 * 4) as f64);
    }

    #[test]
    fn copy_region_from_contiguous_rows() {
        let src = Array3::from_fn(Region3::of_extent(4, 4, 4), |i, j, k| {
            (i * 16 + j * 4 + k) as f64
        });
        let mut dst = Array3::zeros(Region3::of_extent(4, 4, 4));
        let sub = Region3::new(Range1::new(1, 3), Range1::new(1, 3), Range1::new(0, 4));
        dst.copy_region_from(&src, sub);
        assert_eq!(dst.get(1, 1, 0), src.get(1, 1, 0));
        assert_eq!(dst.get(2, 2, 3), src.get(2, 2, 3));
        assert_eq!(dst.get(0, 0, 0), 0.0);
        assert_eq!(dst.get(3, 3, 3), 0.0);
    }

    #[test]
    fn max_abs_diff_on_intersection() {
        let a = Array3::filled(Region3::of_extent(3, 3, 3), 2.0);
        let mut b = Array3::filled(Region3::of_extent(3, 3, 3), 2.0);
        b.set(1, 1, 1, 2.5);
        assert_eq!(a.max_abs_diff(&b), 0.5);
        assert_eq!(a.max_abs_diff(&a.clone()), 0.0);
    }

    #[test]
    #[should_panic]
    fn empty_region_panics() {
        let _ = Array3::zeros(Region3::empty());
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic]
    fn out_of_region_access_panics_in_debug() {
        let a = Array3::zeros(Region3::of_extent(2, 2, 2));
        let _ = a.get(2, 0, 0);
    }

    #[test]
    fn row_accessors_match_get() {
        let r = Region3::new(Range1::new(2, 5), Range1::new(1, 4), Range1::new(10, 16));
        let mut a = Array3::from_fn(r, |i, j, k| (i * 1000 + j * 100 + k) as f64);
        let row = a.row(3, 2, Range1::new(11, 15));
        assert_eq!(row.len(), 4);
        assert_eq!(row[0], a.get(3, 2, 11));
        assert_eq!(row[3], a.get(3, 2, 14));
        let row = a.row_mut(4, 1, Range1::new(10, 16));
        row[5] = -7.0;
        assert_eq!(a.get(4, 1, 15), -7.0);
    }

    #[test]
    fn rebase_reuses_allocation_and_reindexes() {
        let big = Region3::of_extent(4, 4, 4);
        let mut a = Array3::from_fn(big, |i, j, k| (i * 100 + j * 10 + k) as f64);
        let small = Region3::new(Range1::new(10, 12), Range1::new(-1, 2), Range1::new(0, 3));
        assert!(small.cells() <= big.cells());
        a.rebase(small);
        assert_eq!(a.region(), small);
        // Same allocation, new indexing: writing through the new region
        // and reading it back round-trips.
        for (i, j, k) in small.points() {
            a.set(i, j, k, (i - j + k) as f64);
        }
        for (i, j, k) in small.points() {
            assert_eq!(a.get(i, j, k), (i - j + k) as f64);
        }
        // Rebasing back to a same-cell-count region also works.
        a.rebase(big);
        assert_eq!(a.region(), big);
    }

    #[test]
    #[should_panic(expected = "rebase target")]
    fn rebase_larger_than_allocation_panics() {
        let mut a = Array3::zeros(Region3::of_extent(2, 2, 2));
        a.rebase(Region3::of_extent(3, 3, 3));
    }

    #[test]
    fn iter_indexed_matches_get() {
        let a = Array3::from_fn(Region3::of_extent(2, 3, 2), |i, j, k| {
            (i * 100 + j * 10 + k) as f64
        });
        for (i, j, k, v) in a.iter_indexed() {
            assert_eq!(v, a.get(i, j, k));
        }
        assert_eq!(a.iter_indexed().count(), 12);
    }
}
