//! Debug-only access tracing for [`crate::Array3`].
//!
//! The conformance pass of the `islands-analysis` crate needs to know
//! *exactly* which cells a kernel reads and writes, so it can diff the
//! observed access set against the [`crate::StencilPattern`]s a stage
//! declares. Rather than interposing a wrapper type (impossible for the
//! concrete `Array3` methods the row kernels monomorphize against), the
//! four accessors [`crate::Array3::get`], [`crate::Array3::set`],
//! [`crate::Array3::row`] and [`crate::Array3::row_mut`] call into this
//! module.
//!
//! The hooks are compiled only under `debug_assertions` and are further
//! gated at runtime behind a single relaxed atomic load, so release
//! builds pay nothing and debug builds pay one predictable branch per
//! access unless a recording is active *somewhere*. Recording itself is
//! thread-local: accesses performed by other threads while one thread
//! records are not attributed to that thread's log.
//!
//! ```
//! use stencil_engine::{trace, Array3, Region3};
//! let a = Array3::zeros(Region3::of_extent(2, 2, 2));
//! let (v, log) = trace::record(|| a.get(1, 0, 1));
//! assert_eq!(v, 0.0);
//! if trace::is_enabled() {
//!     assert_eq!(log.reads, vec![(trace::array_key(&a), 1, 0, 1)]);
//! }
//! ```

use crate::array3::Array3;
use std::cell::RefCell;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Identity of a traced array: the address of its heap storage. Stable
/// for the lifetime of the array (moving an [`Array3`] does not move its
/// data), and unique among simultaneously live arrays.
pub type ArrayKey = usize;

/// The key under which accesses to `a` are logged.
pub fn array_key(a: &Array3) -> ArrayKey {
    a.as_slice().as_ptr() as ArrayKey
}

/// Every cell access performed during one [`record`] call, in program
/// order. Coordinates are global `(i, j, k)` indices; row accesses are
/// expanded to one entry per cell.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct AccessLog {
    /// `(array, i, j, k)` of every cell read.
    pub reads: Vec<(ArrayKey, i64, i64, i64)>,
    /// `(array, i, j, k)` of every cell written.
    pub writes: Vec<(ArrayKey, i64, i64, i64)>,
}

/// Number of threads currently inside [`record`] — the cheap global gate
/// the per-access hooks check before touching thread-local state.
static ACTIVE_RECORDERS: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    static LOG: RefCell<Option<AccessLog>> = const { RefCell::new(None) };
}

/// Whether this build can trace accesses. Recording is compiled out of
/// release builds: [`record`] still runs its closure there but returns
/// an empty [`AccessLog`]. Callers that *depend* on the log (the
/// conformance linter) must refuse to run when this returns `false`.
pub fn is_enabled() -> bool {
    cfg!(debug_assertions)
}

/// Runs `f` with access recording active on this thread and returns its
/// result together with the accesses it performed.
///
/// # Panics
///
/// Panics when called re-entrantly from within an active recording on
/// the same thread (nested logs would silently mis-attribute accesses).
pub fn record<R>(f: impl FnOnce() -> R) -> (R, AccessLog) {
    if !is_enabled() {
        return (f(), AccessLog::default());
    }
    LOG.with(|slot| {
        let mut s = slot.borrow_mut();
        assert!(s.is_none(), "trace::record does not nest");
        *s = Some(AccessLog::default());
    });
    // ordering: SeqCst — one bump per recorded closure (never a hot
    // path); SC keeps the recorder count trivially coherent with the
    // paired release in `Reset` below.
    ACTIVE_RECORDERS.fetch_add(1, Ordering::SeqCst);
    // Restore the gate and slot even if `f` panics, so a caught panic
    // (e.g. a #[should_panic] test) cannot poison later recordings.
    struct Reset;
    impl Drop for Reset {
        fn drop(&mut self) {
            // ordering: SeqCst — release half of the recorder gate.
            ACTIVE_RECORDERS.fetch_sub(1, Ordering::SeqCst);
            LOG.with(|slot| *slot.borrow_mut() = None);
        }
    }
    let reset = Reset;
    let out = f();
    let log = LOG.with(|slot| slot.borrow_mut().take().expect("recording active"));
    // `Reset` would clear an already-taken slot; keep its gate release.
    drop(reset);
    (out, log)
}

#[cfg(debug_assertions)]
#[inline(always)]
fn recording() -> bool {
    // ordering: Relaxed — a fast-path hint: the access hooks only need
    // to know whether *this* thread is recording, which the thread-
    // local LOG answers authoritatively right after.
    ACTIVE_RECORDERS.load(Ordering::Relaxed) > 0
}

/// Hook: one cell of `key` was read.
#[cfg(debug_assertions)]
#[inline(always)]
pub(crate) fn on_read(key: ArrayKey, i: i64, j: i64, k: i64) {
    if recording() {
        LOG.with(|slot| {
            if let Some(log) = slot.borrow_mut().as_mut() {
                log.reads.push((key, i, j, k));
            }
        });
    }
}

/// Hook: one cell of `key` was written.
#[cfg(debug_assertions)]
#[inline(always)]
pub(crate) fn on_write(key: ArrayKey, i: i64, j: i64, k: i64) {
    if recording() {
        LOG.with(|slot| {
            if let Some(log) = slot.borrow_mut().as_mut() {
                log.writes.push((key, i, j, k));
            }
        });
    }
}

/// Hook: the row `(i, j, kr)` of `key` was borrowed for reading.
#[cfg(debug_assertions)]
#[inline(always)]
pub(crate) fn on_read_row(key: ArrayKey, i: i64, j: i64, kr: crate::region::Range1) {
    if recording() {
        LOG.with(|slot| {
            if let Some(log) = slot.borrow_mut().as_mut() {
                for k in kr.lo..kr.hi {
                    log.reads.push((key, i, j, k));
                }
            }
        });
    }
}

/// Hook: the row `(i, j, kr)` of `key` was borrowed for writing.
#[cfg(debug_assertions)]
#[inline(always)]
pub(crate) fn on_write_row(key: ArrayKey, i: i64, j: i64, kr: crate::region::Range1) {
    if recording() {
        LOG.with(|slot| {
            if let Some(log) = slot.borrow_mut().as_mut() {
                for k in kr.lo..kr.hi {
                    log.writes.push((key, i, j, k));
                }
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::region::{Range1, Region3};

    #[test]
    fn record_captures_get_and_set() {
        if !is_enabled() {
            return;
        }
        let mut a = Array3::zeros(Region3::of_extent(3, 3, 3));
        let key = array_key(&a);
        let (_, log) = record(|| {
            let v = a.get(1, 2, 0);
            a.set(0, 0, 2, v + 1.0);
        });
        assert_eq!(log.reads, vec![(key, 1, 2, 0)]);
        assert_eq!(log.writes, vec![(key, 0, 0, 2)]);
    }

    #[test]
    fn record_expands_rows_per_cell() {
        if !is_enabled() {
            return;
        }
        let mut a = Array3::zeros(Region3::of_extent(2, 2, 4));
        let key = array_key(&a);
        let (_, log) = record(|| {
            let _ = a.row(1, 0, Range1::new(1, 4));
            let _ = a.row_mut(0, 1, Range1::new(0, 2));
        });
        assert_eq!(
            log.reads,
            vec![(key, 1, 0, 1), (key, 1, 0, 2), (key, 1, 0, 3)]
        );
        assert_eq!(log.writes, vec![(key, 0, 1, 0), (key, 0, 1, 1)]);
    }

    #[test]
    fn accesses_outside_record_are_not_logged() {
        let a = Array3::zeros(Region3::of_extent(2, 2, 2));
        let _ = a.get(0, 0, 0); // not recording: must not panic or log
        let (_, log) = record(|| ());
        assert!(log.reads.is_empty() && log.writes.is_empty());
    }

    #[test]
    fn keys_distinguish_arrays() {
        if !is_enabled() {
            return;
        }
        let a = Array3::zeros(Region3::of_extent(2, 2, 2));
        let b = Array3::zeros(Region3::of_extent(2, 2, 2));
        assert_ne!(array_key(&a), array_key(&b));
        let (_, log) = record(|| {
            let _ = a.get(0, 0, 0);
            let _ = b.get(1, 1, 1);
        });
        assert_eq!(log.reads[0].0, array_key(&a));
        assert_eq!(log.reads[1].0, array_key(&b));
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "does not nest")]
    fn nested_recording_panics() {
        let _ = record(|| record(|| ()));
    }

    #[test]
    fn recording_recovers_after_inner_panic() {
        if !is_enabled() {
            return;
        }
        let caught = std::panic::catch_unwind(|| record(|| panic!("boom")));
        assert!(caught.is_err());
        // The gate and slot must be reset: a fresh recording works.
        let a = Array3::zeros(Region3::of_extent(1, 1, 1));
        let (_, log) = record(|| a.get(0, 0, 0));
        assert_eq!(log.reads.len(), 1);
    }
}
