//! # stencil-engine
//!
//! Structural substrate for heterogeneous stencil computations: dense 3-D
//! arrays, index regions, stencil access patterns, stage dependency graphs
//! and the (3+1)D block decomposition used by the islands-of-cores
//! reproduction (Szustak, Wyrzykowski & Jakl, PaCT 2017).
//!
//! The crate deliberately separates the *shape* of a computation (which
//! cells each stage reads and writes — [`StageDef`], [`StageGraph`]) from
//! its *numerics* (a [`Kernel`] looked up per stage at execution time).
//! The same shape information then drives three different consumers:
//!
//! 1. the real multithreaded executors in the `mpdata` crate,
//! 2. the redundant-computation ("extra elements") analysis behind the
//!    islands-of-cores approach (`islands-core` crate),
//! 3. the work traces fed to the NUMA machine simulator (`numa-sim`).
//!
//! ## Example
//!
//! ```
//! use stencil_engine::{
//!     Array3, BlockPlanner, FieldRole, FieldTable, Region3, StageDef,
//!     StageGraph, StageId, StencilPattern,
//! };
//!
//! // A one-stage graph: out[c] = x[c-1] + x[c+1] along i.
//! let mut fields = FieldTable::new();
//! let x = fields.add("x", FieldRole::External);
//! let out = fields.add("out", FieldRole::Output);
//! let stage = StageDef {
//!     id: StageId(0),
//!     name: "avg".into(),
//!     outputs: vec![out],
//!     inputs: vec![(x, StencilPattern::from_offsets([(-1, 0, 0), (1, 0, 0)]))],
//!     flops_per_cell: 1.0,
//! };
//! let graph = StageGraph::build(fields, vec![stage])?;
//!
//! // Plan cache-sized blocks over a domain.
//! let domain = Region3::of_extent(128, 32, 32);
//! let blocking = BlockPlanner::new(1 << 20).plan(&graph, domain, domain)?;
//! assert!(blocking.total_updates() >= domain.cells());
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod array3;
mod balance;
mod block;
mod field;
mod graph;
mod pattern;
mod region;
pub mod rng;
mod stage;
pub mod trace;

pub use array3::Array3;
pub use balance::{
    balanced_cuts, choose_tile, island_cost, measured_plane_scale, suggest_k, tile_grid, CostModel,
};
pub use block::{
    fused_traffic_bytes, original_traffic_bytes, staged_traffic_bytes, tiled_traffic_bytes,
    BlockPlan, BlockPlanner, Blocking, PlanBlocksError, BYTES_PER_CELL,
};
pub use field::{FieldId, FieldRole, FieldStore, FieldTable};
pub use graph::{BuildGraphError, StageGraph};
pub use pattern::{Offset3, StencilPattern};
pub use region::{Axis, Halo3, Range1, Region3};
pub use stage::{Kernel, StageDef, StageId};
