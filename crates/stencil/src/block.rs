//! (3+1)D decomposition: block planning with overlapped tiling.
//!
//! The (3+1)D decomposition of Szustak et al. partitions the 3-D domain
//! into sub-domains ("blocks") processed one after another — the "+1"
//! dimension is the sequence of the 17 MPDATA stages executed per block —
//! sized so that *all intermediate fields of a block fit in cache*. Main
//! memory traffic then reduces to the external inputs and the final
//! output.
//!
//! Blocks are cut along [`Axis::I`] (the slowest-varying axis, so each
//! block is a contiguous slab of memory). Because the stages read across
//! block boundaries, each block computes its stages on enlarged regions
//! produced by [`StageGraph::required_regions`] — overlapped tiling: a few
//! boundary cells are recomputed by both neighbouring blocks instead of
//! being carried between them.

use crate::graph::StageGraph;
use crate::region::{Axis, Region3};
use std::error::Error;
use std::fmt;

/// Size of an `f64` grid element in bytes.
pub const BYTES_PER_CELL: usize = 8;

/// Planning parameters for the (3+1)D decomposition.
///
/// # Examples
///
/// ```
/// use stencil_engine::BlockPlanner;
/// let planner = BlockPlanner::new(16 * 1024 * 1024) // 16 MiB L3
///     .min_depth(2)
///     .max_depth(64);
/// assert_eq!(planner.cache_bytes(), 16 * 1024 * 1024);
/// ```
#[derive(Clone, Debug)]
pub struct BlockPlanner {
    cache_bytes: usize,
    min_depth: usize,
    max_depth: usize,
    axis: Axis,
}

impl BlockPlanner {
    /// Creates a planner targeting a cache of `cache_bytes` bytes.
    pub fn new(cache_bytes: usize) -> Self {
        BlockPlanner {
            cache_bytes,
            min_depth: 1,
            max_depth: usize::MAX,
            axis: Axis::I,
        }
    }

    /// The cache budget in bytes.
    pub fn cache_bytes(&self) -> usize {
        self.cache_bytes
    }

    /// Sets the smallest admissible block depth (default 1). Raising it
    /// above 1 also declares that blocks of that depth are acceptable
    /// even when their working set exceeds the cache budget (real codes
    /// tolerate partial spills rather than refuse to run); with the
    /// default depth, a single slice that cannot fit is an error.
    pub fn min_depth(mut self, d: usize) -> Self {
        self.min_depth = d.max(1);
        self
    }

    /// Sets the largest admissible block depth (default unbounded).
    pub fn max_depth(mut self, d: usize) -> Self {
        self.max_depth = d.max(1);
        self
    }

    /// Sets the axis along which blocks are cut (default [`Axis::I`]).
    pub fn axis(mut self, axis: Axis) -> Self {
        self.axis = axis;
        self
    }

    /// Number of buffers that must live in cache simultaneously: the
    /// peak count of live intermediate/output scratch arrays (externals
    /// are streamed through and not held).
    fn live_buffers(graph: &StageGraph) -> usize {
        graph.max_live_buffers()
    }

    /// Chooses the block depth along the planning axis so the block
    /// working set (including the cumulative halo) fits the cache budget.
    ///
    /// # Errors
    ///
    /// Returns [`PlanBlocksError::CacheTooSmall`] when even the minimum
    /// depth exceeds the budget.
    pub fn choose_depth(
        &self,
        graph: &StageGraph,
        domain: Region3,
    ) -> Result<usize, PlanBlocksError> {
        let halos = graph.cumulative_halos();
        let (hn, hp) = halos.iter().fold((0_i64, 0_i64), |(n, p), h| {
            let (a, b) = h.along(self.axis);
            (n.max(a), p.max(b))
        });
        let halo_span = (hn + hp) as usize;
        // Cells per unit depth along the axis.
        let plane: usize = match self.axis {
            Axis::I => domain.j.len() * domain.k.len(),
            Axis::J => domain.i.len() * domain.k.len(),
            Axis::K => domain.i.len() * domain.j.len(),
        };
        let buffers = Self::live_buffers(graph);
        let per_depth = plane * buffers * BYTES_PER_CELL;
        if per_depth == 0 {
            return Err(PlanBlocksError::EmptyDomain);
        }
        let mut depth = self.cache_bytes / per_depth;
        depth = depth.saturating_sub(halo_span);
        depth = depth.clamp(self.min_depth, self.max_depth);
        let axis_len = domain.range(self.axis).len();
        depth = depth.min(axis_len.max(1));
        let need = (depth + halo_span) * per_depth;
        if need > self.cache_bytes && depth <= self.min_depth && self.min_depth == 1 {
            return Err(PlanBlocksError::CacheTooSmall {
                need,
                have: self.cache_bytes,
            });
        }
        Ok(depth)
    }

    /// Plans the blocks for `domain`, computing each block's per-stage
    /// enlarged regions within `clip` (the region of the domain this
    /// worker may recompute into — the whole domain for the pure (3+1)D
    /// version, the island part for the islands version).
    ///
    /// # Errors
    ///
    /// Propagates depth-selection failures; see [`PlanBlocksError`].
    pub fn plan(
        &self,
        graph: &StageGraph,
        domain: Region3,
        clip: Region3,
    ) -> Result<Blocking, PlanBlocksError> {
        if domain.is_empty() {
            return Err(PlanBlocksError::EmptyDomain);
        }
        let depth = self.choose_depth(graph, domain)?;
        let blocks = domain
            .chunks(self.axis, depth)
            .into_iter()
            .map(|out| BlockPlan {
                output_region: out,
                stage_regions: graph.required_regions(out, clip),
            })
            .collect();
        Ok(Blocking {
            axis: self.axis,
            depth,
            blocks,
        })
    }
}

impl BlockPlanner {
    /// Plans the paper's actual (3+1)D schedule: a **wavefront**
    /// (trapezoidal) blocking of `target` within `domain`.
    ///
    /// Blocks advance along the planning axis. For block `b` covering
    /// output prefix `P_b`, stage `s` computes
    /// `required(P_b)[s] − required(P_{b-1})[s]` — the newly required
    /// slab only. Values reaching back into earlier blocks are *reused
    /// from cache* instead of recomputed, so the total updates across
    /// blocks equal `required(target)` exactly: no intra-target
    /// redundancy. (Redundancy across *different* workers' targets — the
    /// islands' extra elements — is still captured by the enlarged
    /// `required(target)` itself.)
    ///
    /// Early stages run *ahead* of the block's output slab by their
    /// cumulative positive halo, which is what makes stage-order
    /// execution within each block valid.
    ///
    /// # Errors
    ///
    /// Same failure modes as [`BlockPlanner::plan`].
    pub fn plan_wavefront(
        &self,
        graph: &StageGraph,
        target: Region3,
        domain: Region3,
    ) -> Result<Blocking, PlanBlocksError> {
        if target.is_empty() {
            return Err(PlanBlocksError::EmptyDomain);
        }
        let depth = self.choose_depth(graph, target)?;
        let chunks = target.chunks(self.axis, depth);
        let mut blocks: Vec<BlockPlan> = Vec::with_capacity(chunks.len());
        // Frontier along the planning axis per stage: everything below
        // it has already been computed by earlier blocks.
        let mut frontier: Vec<Option<i64>> = vec![None; graph.stage_count()];
        let mut prefix = target;
        for chunk in chunks {
            prefix = prefix.with_range(
                self.axis,
                crate::region::Range1::new(target.range(self.axis).lo, chunk.range(self.axis).hi),
            );
            let req = graph.required_regions(prefix, domain);
            let mut stage_regions = Vec::with_capacity(req.len());
            for (s, r) in req.iter().enumerate() {
                if r.is_empty() {
                    stage_regions.push(Region3::empty());
                    continue;
                }
                let lo = frontier[s].unwrap_or(r.range(self.axis).lo);
                let hi = r.range(self.axis).hi;
                frontier[s] = Some(hi.max(lo));
                let slab = r.with_range(self.axis, crate::region::Range1::new(lo, hi));
                stage_regions.push(if slab.is_empty() {
                    Region3::empty()
                } else {
                    slab
                });
            }
            blocks.push(BlockPlan {
                output_region: chunk,
                stage_regions,
            });
        }
        Ok(Blocking {
            axis: self.axis,
            depth,
            blocks,
        })
    }
}

/// Error from (3+1)D block planning.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum PlanBlocksError {
    /// The domain contains no cells.
    EmptyDomain,
    /// Even the smallest admissible block exceeds the cache budget.
    CacheTooSmall {
        /// Bytes required by the minimum block.
        need: usize,
        /// Bytes available.
        have: usize,
    },
}

impl fmt::Display for PlanBlocksError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlanBlocksError::EmptyDomain => write!(f, "domain contains no cells"),
            PlanBlocksError::CacheTooSmall { need, have } => {
                write!(
                    f,
                    "minimum block needs {need} B but cache budget is {have} B"
                )
            }
        }
    }
}

impl Error for PlanBlocksError {}

/// One block of the (3+1)D decomposition.
#[derive(Clone, Debug)]
pub struct BlockPlan {
    /// The slab of final output this block owns (blocks tile the domain
    /// disjointly on output).
    pub output_region: Region3,
    /// For every stage, the (possibly enlarged) region the block computes.
    pub stage_regions: Vec<Region3>,
}

impl BlockPlan {
    /// Total element updates this block performs across all stages.
    pub fn updates(&self) -> usize {
        self.stage_regions.iter().map(|r| r.cells()).sum()
    }
}

/// A complete block schedule for one worker's domain part.
#[derive(Clone, Debug)]
pub struct Blocking {
    /// Axis along which blocks were cut.
    pub axis: Axis,
    /// Chosen block depth along that axis.
    pub depth: usize,
    /// Blocks in execution order.
    pub blocks: Vec<BlockPlan>,
}

impl Blocking {
    /// Number of blocks.
    pub fn len(&self) -> usize {
        self.blocks.len()
    }

    /// Whether there are no blocks.
    pub fn is_empty(&self) -> bool {
        self.blocks.is_empty()
    }

    /// Total element updates across all blocks and stages (includes the
    /// overlapped-tiling redundancy).
    pub fn total_updates(&self) -> usize {
        self.blocks.iter().map(BlockPlan::updates).sum()
    }

    /// The scratch region a block-local intermediate buffer must cover:
    /// the hull of all stage regions of the block.
    pub fn scratch_region(&self, block: usize) -> Region3 {
        self.blocks[block]
            .stage_regions
            .iter()
            .fold(Region3::empty(), |acc, r| acc.hull(*r))
    }

    /// The hull of every stage region of every block — the region a
    /// persistent (cross-block) scratch buffer must cover under the
    /// wavefront schedule.
    pub fn hull(&self) -> Region3 {
        (0..self.blocks.len()).fold(Region3::empty(), |acc, b| acc.hull(self.scratch_region(b)))
    }
}

/// Bytes of main-memory traffic per time step for the *original* version:
/// every stage streams its inputs from and its outputs to main memory.
pub fn original_traffic_bytes(graph: &StageGraph, domain: Region3) -> usize {
    let mut bytes = 0;
    for st in graph.stages() {
        // Reads: one pass over each distinct input field.
        bytes += st.inputs.len() * domain.cells() * BYTES_PER_CELL;
        // Writes (write-allocate: a store miss also loads the line first).
        bytes += 2 * st.outputs.len() * domain.cells() * BYTES_PER_CELL;
    }
    bytes
}

/// Bytes of main-memory traffic per time step under the (3+1)D
/// decomposition: only external inputs are read and only final outputs are
/// written; intermediates stay in cache.
pub fn fused_traffic_bytes(graph: &StageGraph, domain: Region3) -> usize {
    let externals = graph.external_fields().len();
    let outputs = graph.output_fields().len();
    (externals + 2 * outputs) * domain.cells() * BYTES_PER_CELL
}

/// Bytes of main-memory traffic per time step for a *per-stage sweep*
/// replay over explicit stage regions (the untiled islands/fused plan
/// path): every stage streams each input over its enlarged region and
/// writes its outputs back through main memory (write-allocate 2×).
/// `regions` is indexed like [`StageGraph::stages`] — pass the output
/// of [`StageGraph::required_regions`] for one worker's part, or the
/// union over all parts for a whole schedule.
pub fn staged_traffic_bytes(graph: &StageGraph, regions: &[Region3]) -> usize {
    graph
        .stages()
        .iter()
        .enumerate()
        .map(|(s, st)| {
            let cells = regions.get(s).map_or(0, |r| r.cells());
            (st.inputs.len() + 2 * st.outputs.len()) * cells * BYTES_PER_CELL
        })
        .sum()
}

/// Bytes of main-memory traffic per time step for a *tile-fused chain*
/// replay of `tiles` within `domain`: per tile, the external inputs are
/// read over the hulls the backward requirement analysis assigns them
/// (so the redundant halo re-reads at tile faces are priced in) and the
/// owned output region is written (write-allocate 2×); all
/// intermediates stay resident in the tile's cache-sized scratch and
/// move nothing.
pub fn tiled_traffic_bytes(graph: &StageGraph, tiles: &[Region3], domain: Region3) -> usize {
    let mut bytes = 0;
    for &t in tiles {
        if t.is_empty() {
            continue;
        }
        for (_, r) in graph.external_read_regions(t, domain) {
            bytes += r.cells() * BYTES_PER_CELL;
        }
        bytes += 2 * t.intersect(domain).cells() * BYTES_PER_CELL;
    }
    bytes
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::field::{FieldRole as FR, FieldTable};
    use crate::pattern::StencilPattern;
    use crate::region::Range1;
    use crate::stage::{StageDef, StageId};

    fn chain_graph(halo: i64, stages_n: usize) -> StageGraph {
        let mut t = FieldTable::new();
        let x = t.add("x", FR::External);
        let mut prev = x;
        let mut stages = Vec::new();
        for s in 0..stages_n {
            let role = if s + 1 == stages_n {
                FR::Output
            } else {
                FR::Intermediate
            };
            let f = t.add(&format!("f{s}"), role);
            stages.push(StageDef {
                id: StageId(s as u32),
                name: format!("s{s}"),
                outputs: vec![f],
                inputs: vec![(
                    prev,
                    StencilPattern::from_offsets([(-halo, 0, 0), (0, 0, 0), (halo, 0, 0)]),
                )],
                flops_per_cell: 2.0,
            });
            prev = f;
        }
        StageGraph::build(t, stages).unwrap()
    }

    #[test]
    fn choose_depth_respects_cache() {
        let g = chain_graph(1, 3);
        // Live scratch peaks at 2 buffers (each stage holds its input
        // and its output); externals stream through.
        assert_eq!(g.max_live_buffers(), 2);
        let domain = Region3::of_extent(64, 16, 16);
        // 2 buffers × 16×16 plane × 8 B = 4096 B per unit depth.
        let planner = BlockPlanner::new(4096 * 10);
        let d = planner.choose_depth(&g, domain).unwrap();
        assert!(d >= 1);
        // Working set of (d + halo_span) × per_depth must fit.
        assert!((d + 4) * 4096 <= 4096 * 10 || d == 1);
    }

    #[test]
    fn cache_too_small_is_reported() {
        let g = chain_graph(1, 3);
        let domain = Region3::of_extent(64, 64, 64);
        let planner = BlockPlanner::new(16); // absurdly small
        assert!(matches!(
            planner.plan(&g, domain, domain),
            Err(PlanBlocksError::CacheTooSmall { .. })
        ));
    }

    #[test]
    fn blocks_tile_domain_on_output() {
        let g = chain_graph(1, 3);
        let domain = Region3::of_extent(64, 8, 8);
        let planner = BlockPlanner::new(1 << 20).max_depth(10);
        let b = planner.plan(&g, domain, domain).unwrap();
        let total: usize = b.blocks.iter().map(|p| p.output_region.cells()).sum();
        assert_eq!(total, domain.cells());
        for w in b.blocks.windows(2) {
            assert!(!w[0].output_region.overlaps(w[1].output_region));
            assert_eq!(w[0].output_region.i.hi, w[1].output_region.i.lo);
        }
    }

    #[test]
    fn stage_regions_overlap_neighbouring_blocks() {
        let g = chain_graph(1, 3);
        let domain = Region3::of_extent(64, 8, 8);
        let planner = BlockPlanner::new(1 << 20).max_depth(8);
        let b = planner.plan(&g, domain, domain).unwrap();
        // Interior block: first stage reaches 2 beyond output on each side.
        let mid = &b.blocks[b.len() / 2];
        assert_eq!(mid.stage_regions[0].i.lo, mid.output_region.i.lo - 2);
        assert_eq!(mid.stage_regions[0].i.hi, mid.output_region.i.hi + 2);
        // Redundancy exists.
        assert!(b.total_updates() > 3 * domain.cells());
    }

    #[test]
    fn clip_restricts_recompute_reach() {
        let g = chain_graph(1, 3);
        let domain = Region3::of_extent(64, 8, 8);
        // An island that owns only [0, 32) and may not compute beyond it...
        let part = Region3::new(crate::region::Range1::new(0, 32), domain.j, domain.k);
        let planner = BlockPlanner::new(1 << 20).max_depth(8);
        // ...except that the islands executor clips to the *enlarged*
        // island region; here we just verify the clip argument is honoured.
        let b = planner.plan(&g, part, part).unwrap();
        for blk in &b.blocks {
            for r in &blk.stage_regions {
                assert!(part.contains_region(*r));
            }
        }
    }

    #[test]
    fn scratch_region_covers_all_stage_regions() {
        let g = chain_graph(1, 4);
        let domain = Region3::of_extent(32, 4, 4);
        let b = BlockPlanner::new(1 << 20)
            .max_depth(6)
            .plan(&g, domain, domain)
            .unwrap();
        for n in 0..b.len() {
            let s = b.scratch_region(n);
            for r in &b.blocks[n].stage_regions {
                assert!(s.contains_region(*r));
            }
        }
    }

    #[test]
    fn traffic_models_ordering() {
        let g = chain_graph(1, 5);
        let domain = Region3::of_extent(32, 32, 32);
        let orig = original_traffic_bytes(&g, domain);
        let fused = fused_traffic_bytes(&g, domain);
        assert!(
            fused < orig,
            "fused traffic {fused} must beat original {orig}"
        );
        // Original: 5 stages × (1 read + 2 write) × N×8; fused: (1 + 2) × N×8.
        assert_eq!(orig, 5 * 3 * domain.cells() * 8);
        assert_eq!(fused, 3 * domain.cells() * 8);
    }

    #[test]
    fn tiled_traffic_beats_staged_and_approaches_fused() {
        let g = chain_graph(1, 5);
        let domain = Region3::of_extent(32, 32, 8);
        let staged = staged_traffic_bytes(&g, &g.required_regions(domain, domain));
        // 8×8 (i,j) tiles covering the domain.
        let mut tiles = Vec::new();
        for ic in domain.chunks(Axis::I, 8) {
            tiles.extend(ic.chunks(Axis::J, 8));
        }
        let tiled = tiled_traffic_bytes(&g, &tiles, domain);
        let fused = fused_traffic_bytes(&g, domain);
        assert!(
            tiled < staged,
            "tiled traffic {tiled} must beat per-stage sweeps {staged}"
        );
        // Tiling pays halo re-reads over the ideal fused bound, but only
        // by the face bands: stays within 2× of the ideal here.
        assert!(tiled >= fused);
        assert!(
            tiled < 2 * fused,
            "halo re-reads blew up: {tiled} vs {fused}"
        );
        // One whole-domain tile *is* the ideal fused schedule.
        assert_eq!(tiled_traffic_bytes(&g, &[domain], domain), fused);
        // Empty tiles cost nothing.
        assert_eq!(tiled_traffic_bytes(&g, &[Region3::empty()], domain), 0);
    }

    #[test]
    fn wavefront_total_updates_equal_required_target() {
        // The defining property: no intra-target redundancy.
        let g = chain_graph(1, 4);
        let domain = Region3::of_extent(48, 6, 6);
        let planner = BlockPlanner::new(1 << 20).max_depth(5);
        let b = planner.plan_wavefront(&g, domain, domain).unwrap();
        let required: usize = g
            .required_regions(domain, domain)
            .iter()
            .map(|r| r.cells())
            .sum();
        assert_eq!(b.total_updates(), required);
        // Here target == domain, so required == stages × cells.
        assert_eq!(required, 4 * domain.cells());
    }

    #[test]
    fn wavefront_stage_regions_are_disjoint_and_cover() {
        let g = chain_graph(2, 3);
        let domain = Region3::of_extent(40, 4, 4);
        let target = Region3::new(Range1::new(8, 32), domain.j, domain.k);
        let b = BlockPlanner::new(1 << 20)
            .max_depth(6)
            .plan_wavefront(&g, target, domain)
            .unwrap();
        let req = g.required_regions(target, domain);
        for (s, req_s) in req.iter().enumerate() {
            let mut covered = 0usize;
            let mut last_hi = None;
            for blk in &b.blocks {
                let r = blk.stage_regions[s];
                if r.is_empty() {
                    continue;
                }
                if let Some(h) = last_hi {
                    assert_eq!(r.i.lo, h, "stage {s} slabs must be contiguous");
                }
                last_hi = Some(r.i.hi);
                covered += r.cells();
            }
            assert_eq!(covered, req_s.cells(), "stage {s} must cover required");
        }
    }

    #[test]
    fn wavefront_early_stages_run_ahead() {
        let g = chain_graph(1, 3);
        let domain = Region3::of_extent(30, 4, 4);
        let b = BlockPlanner::new(1 << 20)
            .max_depth(5)
            .plan_wavefront(&g, domain, domain)
            .unwrap();
        let first = &b.blocks[0];
        // Stage 0 reaches 2 beyond the output slab, stage 1 reaches 1.
        assert_eq!(first.stage_regions[0].i.hi, first.output_region.i.hi + 2);
        assert_eq!(first.stage_regions[1].i.hi, first.output_region.i.hi + 1);
        assert_eq!(first.stage_regions[2].i.hi, first.output_region.i.hi);
        // Last block: early stages have little or nothing left.
        let last = b.blocks.last().unwrap();
        assert!(last.stage_regions[0].cells() <= last.stage_regions[2].cells());
        // Hull covers everything.
        assert!(b.hull().contains_region(domain));
    }

    #[test]
    fn min_depth_one_always_plans_with_huge_cache() {
        let g = chain_graph(2, 2);
        let domain = Region3::of_extent(3, 3, 3);
        let b = BlockPlanner::new(usize::MAX / 2)
            .plan(&g, domain, domain)
            .unwrap();
        assert_eq!(b.len(), 1);
        assert_eq!(b.blocks[0].output_region, domain);
    }
}
