//! Cost-model-driven load balancing: non-uniform cut positions.
//!
//! Uniform partitioning equalizes *width*, but the islands-of-cores
//! schedule does not cost the same per plane: interior islands
//! recompute halo cells on both cut faces while edge islands pay for
//! one, and the stages of a heterogeneous graph differ in per-cell
//! work. This module prices a candidate island slice by the *enlarged*
//! per-stage regions the backward requirement analysis assigns it —
//! interior cells plus redundant halo cells, weighted by per-stage
//! coefficients — and solves for cut positions that equalize modeled
//! cost instead of width.
//!
//! The solver is exact for contiguous 1-D cuts: [`balanced_cuts`]
//! minimizes the maximum island cost by binary-searching a cost cap and
//! greedily carving the longest prefix that fits under it. Island cost
//! is monotone in slice width (the required regions of a larger target
//! contain those of a smaller one), so the greedy carve is optimal for
//! each cap and the bisection converges to the min-max partition. A
//! final slack-spreading pass re-carves under the bisected cap so each
//! island's cost sits near the mean rather than the cap — the greedy
//! carve alone would dump all slack into a starved tail island.

use crate::field::FieldId;
use crate::graph::StageGraph;
use crate::region::{Axis, Range1, Region3};

/// Per-stage (and optionally per-plane) cost coefficients for
/// [`island_cost`].
///
/// The modeled cost of an island is
///
/// ```text
/// Σ_stages coeff_s · Σ_{planes p of region_s} scale_p · cells_in_plane
/// ```
///
/// where `region_s` is the stage's *enlarged* region from
/// [`StageGraph::required_regions`] — so redundant halo recomputation
/// is priced automatically — and `scale_p` is an optional per-plane
/// multiplier along the cut axis (all `1.0` when absent).
#[derive(Clone, Debug, PartialEq)]
pub struct CostModel {
    per_stage: Vec<f64>,
    plane_scale: Vec<f64>,
}

impl CostModel {
    /// Every stage costs the same per cell: balance on cell counts
    /// (interior + redundant halo) alone.
    pub fn uniform(stages: usize) -> Self {
        CostModel {
            per_stage: vec![1.0; stages],
            plane_scale: Vec::new(),
        }
    }

    /// Per-stage coefficients from the graph's declared
    /// `flops_per_cell` (clamped to at least `1.0` so zero-flop stages
    /// still cost their memory traffic).
    pub fn from_graph(graph: &StageGraph) -> Self {
        CostModel {
            per_stage: graph
                .stages()
                .iter()
                .map(|s| s.flops_per_cell.max(1.0))
                .collect(),
            plane_scale: Vec::new(),
        }
    }

    /// Attaches a per-plane multiplier profile along the cut axis:
    /// `scale[p]` scales every cell whose cut-axis coordinate is
    /// `domain.range(axis).lo + p`. Planes beyond the profile keep
    /// scale `1.0`. This is how measured per-island kernel rates feed
    /// back into a second cut ([`measured_plane_scale`]).
    #[must_use]
    pub fn with_plane_scale(mut self, scale: Vec<f64>) -> Self {
        self.plane_scale = scale;
        self
    }

    /// The per-stage coefficient vector.
    pub fn per_stage(&self) -> &[f64] {
        &self.per_stage
    }

    fn stage_coeff(&self, s: usize) -> f64 {
        self.per_stage.get(s).copied().unwrap_or(1.0)
    }

    fn plane(&self, idx: usize) -> f64 {
        self.plane_scale.get(idx).copied().unwrap_or(1.0)
    }
}

/// Modeled cost of one island computing `part` of `domain` under the
/// enlarged-schedule semantics: each stage is priced over its region
/// from [`StageGraph::required_regions`], so interior cells and
/// redundant halo cells are both counted. `axis` anchors the per-plane
/// profile of `model` (irrelevant when the profile is empty).
pub fn island_cost(
    graph: &StageGraph,
    part: Region3,
    domain: Region3,
    axis: Axis,
    model: &CostModel,
) -> f64 {
    if part.is_empty() {
        return 0.0;
    }
    let regions = graph.required_regions(part, domain);
    let origin = domain.range(axis).lo;
    let mut total = 0.0;
    for (s, r) in regions.iter().enumerate() {
        if r.is_empty() {
            continue;
        }
        let coeff = model.stage_coeff(s);
        if model.plane_scale.is_empty() {
            total += coeff * r.cells() as f64;
        } else {
            let range = r.range(axis);
            let per_plane = (r.cells() / range.len()) as f64;
            for p in range.lo..range.hi {
                total += coeff * per_plane * model.plane((p - origin) as usize);
            }
        }
    }
    total
}

/// Cuts `within` along `axis` into `islands` contiguous parts whose
/// maximum modeled cost ([`island_cost`]) is minimal. Degenerate cases
/// mirror [`Region3::split`]: fewer planes than islands gives one
/// plane each and empty trailing parts; a single island gets
/// everything.
///
/// The returned parts tile `within` exactly (empty parts sit at
/// `within`'s high edge), so they are valid executor partitions.
///
/// # Panics
///
/// Panics if `islands` is zero.
pub fn balanced_cuts(
    graph: &StageGraph,
    within: Region3,
    domain: Region3,
    axis: Axis,
    islands: usize,
    model: &CostModel,
) -> Vec<Region3> {
    assert!(islands > 0, "need at least one island");
    let range = within.range(axis);
    if islands == 1 || range.len() <= islands {
        return within.split(axis, islands);
    }
    let cost =
        |lo: i64, hi: i64| island_cost(graph, slab(within, axis, lo, hi), domain, axis, model);

    // Feasibility carve: greedily give each island the longest prefix
    // with cost ≤ cap (always at least one plane — below the minimal
    // feasible cap that overshoots and the carve runs out of islands).
    let carve = |cap: f64| -> Option<Vec<Region3>> {
        let mut parts = Vec::with_capacity(islands);
        let mut lo = range.lo;
        for _ in 0..islands {
            if lo >= range.hi {
                parts.push(slab(within, axis, range.hi, range.hi));
                continue;
            }
            let mut hi = lo + 1;
            while hi < range.hi && cost(lo, hi + 1) <= cap {
                hi += 1;
            }
            if cost(lo, hi) > cap {
                return None;
            }
            parts.push(slab(within, axis, lo, hi));
            lo = hi;
        }
        (lo == range.hi).then_some(parts)
    };

    // Slack-spreading carve: the greedy feasibility carve front-loads
    // all slack into the last island (120 planes / 14 islands becomes
    // thirteen 9-plane islands and a starved 3-plane tail — same max
    // cost, far worse mean utilization). Under a *fixed* cap, instead
    // give each island the width whose cost lands nearest `target`,
    // so island costs cluster around the mean rather than the cap.
    // Every slice still respects the cap, so the min-max objective is
    // preserved; the greedy carve stays the fallback if quantization
    // ever pushes the tail over the cap.
    let spread = |total: f64, cap: f64| -> Option<Vec<Region3>> {
        let mut parts = Vec::with_capacity(islands);
        let mut lo = range.lo;
        let mut remaining = total;
        for left in (1..=islands).rev() {
            if lo >= range.hi {
                parts.push(slab(within, axis, range.hi, range.hi));
                continue;
            }
            // Leave at least one plane for each island still to come.
            // The target is recomputed from the cost still to be placed
            // so per-island rounding self-corrects instead of drifting.
            let headroom = range.hi - (left as i64 - 1);
            let target = (remaining / left as f64).max(0.0);
            let mut hi = lo + 1;
            while hi < headroom && cost(lo, hi) < target && cost(lo, hi + 1) <= cap {
                hi += 1;
            }
            // Plane quantization: `hi` is the first width at or above
            // the target. Round to whichever side lands closer, or the
            // overshoot compounds island by island and re-creates the
            // front-loaded carve.
            if hi > lo + 1 && cost(lo, hi) - target > target - cost(lo, hi - 1) {
                hi -= 1;
            }
            if left == 1 {
                hi = range.hi;
            }
            let c = cost(lo, hi);
            if c > cap {
                return None;
            }
            parts.push(slab(within, axis, lo, hi));
            remaining -= c;
            lo = hi;
        }
        (lo == range.hi).then_some(parts)
    };

    // Min-max bisection on the cost cap. The whole-region cost is
    // always feasible (island 0 takes everything), so `best` is set.
    let mut lo_cap = 0.0;
    let mut hi_cap = cost(range.lo, range.hi).max(1.0);
    let mut best = carve(hi_cap).expect("whole-region cap is feasible");
    for _ in 0..48 {
        let mid = 0.5 * (lo_cap + hi_cap);
        match carve(mid) {
            Some(parts) => {
                best = parts;
                hi_cap = mid;
            }
            None => lo_cap = mid,
        }
    }

    // The spread target is the mean *island* cost — the hull cost of
    // the whole region underestimates it badly because every cut adds
    // two faces of redundant halo, so derive it from the carve in hand
    // (any full carve works: the face count, and hence the total, is
    // nearly the same for every non-degenerate carve). Iterate a few
    // times in case rebalancing shifts the total; candidates compete on
    // the sum of squared costs — with the max pinned by the bisection
    // and the total near-invariant, lower sum-of-squares means lower
    // variance, i.e. the even carve beats the starved-tail one.
    let island_sum = |parts: &[Region3]| -> f64 {
        parts
            .iter()
            .map(|&p| island_cost(graph, p, domain, axis, model))
            .sum()
    };
    let sumsq = |parts: &[Region3]| -> f64 {
        parts
            .iter()
            .map(|&p| {
                let c = island_cost(graph, p, domain, axis, model);
                c * c
            })
            .sum()
    };
    for _ in 0..3 {
        match spread(island_sum(&best), hi_cap) {
            Some(parts) if sumsq(&parts) < sumsq(&best) - 1e-9 => best = parts,
            _ => break,
        }
    }
    best
}

/// Picks the cost-minimizing temporal fuse depth for one island.
///
/// Fusing `k` time steps into one epoch amortizes one inter-island
/// synchronization (`sync_cost`, in the same unit as [`island_cost`])
/// over `k` steps, but each earlier fused step computes a target
/// enlarged by one cumulative stencil halo — the compute chain
/// `t_0 = part`, `t_{j+1} = ` hull of `t_j`'s reads of `stepped`
/// ([`StageGraph::external_read_regions`], clipped to `domain`). The
/// modeled per-step cost at depth `k` is
///
/// ```text
/// ( Σ_{j<k} island_cost(t_j) + sync_cost ) / k
/// ```
///
/// and `suggest_k` returns the minimizing `k ∈ 1..=max_k` (ties go to
/// the smaller `k` — less redundant memory traffic the model does not
/// price). The redundant-compute term grows monotonically with `k`
/// while the amortized sync term shrinks as `1/k`, so small islands
/// with expensive synchronization get large `k` and wide islands with
/// cheap barriers stay at `k = 1`.
///
/// # Panics
///
/// Panics if `max_k` is zero.
#[allow(clippy::too_many_arguments)] // mirrors island_cost's signature plus the sync trade
pub fn suggest_k(
    graph: &StageGraph,
    stepped: FieldId,
    part: Region3,
    domain: Region3,
    axis: Axis,
    model: &CostModel,
    sync_cost: f64,
    max_k: usize,
) -> usize {
    assert!(max_k > 0, "need at least one candidate depth");
    let mut target = part;
    let mut compute_sum = 0.0;
    let mut best = (1, f64::INFINITY);
    for k in 1..=max_k {
        compute_sum += island_cost(graph, target, domain, axis, model);
        let per_step = (compute_sum + sync_cost) / k as f64;
        if per_step < best.1 {
            best = (k, per_step);
        }
        if k < max_k {
            target = graph
                .external_read_regions(target, domain)
                .get(&stepped)
                .copied()
                .unwrap_or_else(Region3::empty);
            if target.is_empty() {
                break;
            }
        }
    }
    best.0
}

/// Picks an `(i, j)` tile extent for cache-resident chain execution.
///
/// A tile-fused replay runs the whole stage chain of one `(i, j)` tile
/// back-to-back on tile-local scratch, so the working set per tile is
/// `max_live_buffers × (ti + halo_i) × (tj + halo_j) × nk` cells (the
/// `k` axis is kept whole: it is the contiguous storage axis, and
/// splitting it would break unit-stride kernel rows). The choice trades
/// two costs the budget couples:
///
/// * *redundant halo recompute* — every stage of a tile is computed on
///   the enlarged region of the backward requirement analysis, so each
///   tile face pays a halo band of recomputed cells; smaller tiles mean
///   proportionally more faces;
/// * *traffic saved* — any tile whose working set fits `cache_bytes`
///   keeps all intermediates cache-resident, so among fitting tiles the
///   one with the lowest recompute overhead moves the least memory.
///
/// The search therefore scans admissible `ti`, derives the largest
/// `tj` whose footprint fits, and keeps the pair minimizing the
/// enlarged-to-owned cell ratio `((ti+hi)·(tj+hj)) / (ti·tj)` (ties go
/// to the larger tile — fewer tiles, less scheduling overhead). When
/// even a 1×1 tile exceeds the budget the best-effort `(1, 1)` is
/// returned: an oversized tile only spills, it never computes wrong
/// values.
pub fn choose_tile(graph: &StageGraph, domain: Region3, cache_bytes: usize) -> (usize, usize) {
    let halos = graph.cumulative_halos();
    let fold_axis = |axis: Axis| -> usize {
        let (n, p) = halos.iter().fold((0_i64, 0_i64), |(n, p), h| {
            let (a, b) = h.along(axis);
            (n.max(a), p.max(b))
        });
        (n + p) as usize
    };
    let (hi, hj) = (fold_axis(Axis::I), fold_axis(Axis::J));
    let nk = domain.k.len().max(1);
    let buffers = graph.max_live_buffers();
    let per_cell = buffers * nk * crate::block::BYTES_PER_CELL;
    let (max_ti, max_tj) = (domain.i.len().max(1), domain.j.len().max(1));
    let footprint = |ti: usize, tj: usize| (ti + hi) * (tj + hj) * per_cell;
    let mut best = (1usize, 1usize);
    let mut best_ratio = f64::INFINITY;
    for ti in 1..=max_ti {
        // Largest j extent whose footprint fits the budget at this ti.
        let budget_j = cache_bytes / ((ti + hi) * per_cell);
        let tj = budget_j.saturating_sub(hj).min(max_tj);
        if tj == 0 || footprint(ti, tj) > cache_bytes {
            continue;
        }
        let ratio = (footprint(ti, tj) as f64 / per_cell as f64) / (ti * tj) as f64;
        let better =
            ratio < best_ratio - 1e-12 || (ratio < best_ratio + 1e-12 && ti * tj > best.0 * best.1);
        if better {
            best = (ti, tj);
            best_ratio = ratio;
        }
    }
    best
}

/// Cuts `part` into an `(i, j)` grid of near-equal tiles whose extents
/// never exceed the `(ti, tj)` targets, row-major (I-bands outer,
/// J-columns inner).
///
/// The targets are treated as *capacities*, not literal chunk sizes:
/// each axis is split into `ceil(len / target)` pieces whose lengths
/// differ by at most one. Fixed-size chunking would leave a remainder
/// sliver (a 60-cell axis at target 19 cuts 19+19+19+3), and a 3-wide
/// tile pays the same halo bands as a 19-wide one for a sixth of the
/// owned cells — the per-cell recompute overhead of slivers dominates
/// measured tile-fused step time. Balanced splitting keeps every tile
/// at `floor(len / n)` or above, so the worst tile's overhead stays
/// within one cell of the best's. The `k` axis is never cut (it is the
/// unit-stride storage axis). Empty tiles are dropped; an empty `part`
/// yields no tiles.
///
/// Every consumer of a tile decomposition — the plan builder, the
/// disjointness model, and the traffic model — must cut through this
/// one function, or the proof and the bytes would describe a different
/// grid than the one executed.
///
/// # Panics
///
/// Panics if either target extent is zero.
pub fn tile_grid(part: Region3, (ti, tj): (usize, usize)) -> Vec<Region3> {
    assert!(ti > 0 && tj > 0, "tile target extents must be positive");
    let mut tiles = Vec::new();
    if part.is_empty() {
        return tiles;
    }
    let n_i = part.i.len().div_ceil(ti).max(1);
    for band in part.split(Axis::I, n_i) {
        if band.is_empty() {
            continue;
        }
        let n_j = band.j.len().div_ceil(tj).max(1);
        for tile in band.split(Axis::J, n_j) {
            if !tile.is_empty() {
                tiles.push(tile);
            }
        }
    }
    tiles
}

/// Derives a per-plane cost profile along `axis` from measured
/// per-island kernel statistics: `stats[i] = (kernel_ns,
/// computed_cells)` for `parts[i]`. Each island's planes get the
/// island's per-cell rate normalized so the cell-weighted mean rate is
/// `1.0`; islands without measurements keep scale `1.0`. Feed the
/// result into [`CostModel::with_plane_scale`] to re-cut from measured
/// imbalance.
///
/// # Panics
///
/// Panics if `parts` and `stats` disagree in length.
pub fn measured_plane_scale(
    parts: &[Region3],
    axis: Axis,
    extent: Range1,
    stats: &[(u64, u64)],
) -> Vec<f64> {
    assert_eq!(parts.len(), stats.len(), "one stat per part");
    let rates: Vec<Option<f64>> = stats
        .iter()
        .map(|&(ns, cells)| (cells > 0).then(|| ns as f64 / cells as f64))
        .collect();
    let (mut ns_sum, mut cell_sum) = (0.0, 0.0);
    for &(ns, cells) in stats {
        if cells > 0 {
            ns_sum += ns as f64;
            cell_sum += cells as f64;
        }
    }
    let mut scale = vec![1.0; extent.len()];
    if cell_sum == 0.0 || ns_sum == 0.0 {
        return scale;
    }
    let mean_rate = ns_sum / cell_sum;
    for (part, rate) in parts.iter().zip(&rates) {
        let Some(rate) = rate else { continue };
        let r = part.range(axis).intersect(extent);
        for p in r.lo..r.hi {
            scale[(p - extent.lo) as usize] = rate / mean_rate;
        }
    }
    scale
}

/// `within` restricted to `[lo, hi)` along `axis`.
fn slab(within: Region3, axis: Axis, lo: i64, hi: i64) -> Region3 {
    within.with_range(axis, Range1::new(lo, hi))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::field::{FieldRole, FieldTable};
    use crate::pattern::StencilPattern;
    use crate::stage::{StageDef, StageId};

    /// A two-stage chain with an i-halo: mid = f(x±1), out = f(mid±1).
    /// Interior islands recompute two halo faces, edges one.
    fn chain_graph() -> StageGraph {
        let mut fields = FieldTable::new();
        let x = fields.add("x", FieldRole::External);
        let mid = fields.add("mid", FieldRole::Intermediate);
        let out = fields.add("out", FieldRole::Output);
        let stages = vec![
            StageDef {
                id: StageId(0),
                name: "mid".into(),
                outputs: vec![mid],
                inputs: vec![(x, StencilPattern::from_offsets([(-1, 0, 0), (1, 0, 0)]))],
                flops_per_cell: 2.0,
            },
            StageDef {
                id: StageId(1),
                name: "out".into(),
                outputs: vec![out],
                inputs: vec![(mid, StencilPattern::from_offsets([(-1, 0, 0), (1, 0, 0)]))],
                flops_per_cell: 6.0,
            },
        ];
        StageGraph::build(fields, stages).unwrap()
    }

    fn max_cost(graph: &StageGraph, parts: &[Region3], domain: Region3, m: &CostModel) -> f64 {
        parts
            .iter()
            .map(|&p| island_cost(graph, p, domain, Axis::I, m))
            .fold(0.0, f64::max)
    }

    #[test]
    fn island_cost_counts_redundant_halo() {
        let g = chain_graph();
        let d = Region3::of_extent(40, 8, 4);
        let m = CostModel::uniform(g.stage_count());
        let parts = d.split(Axis::I, 4);
        // Interior slabs need one extra mid-plane per cut face for the
        // out stage, edges only one face → strictly higher cost.
        let edge = island_cost(&g, parts[0], d, Axis::I, &m);
        let interior = island_cost(&g, parts[1], d, Axis::I, &m);
        assert!(interior > edge, "interior {interior} ≤ edge {edge}");
        // Whole domain costs exactly Σ stage cells (no redundancy).
        let whole = island_cost(&g, d, d, Axis::I, &m);
        assert_eq!(whole, (2 * d.cells()) as f64);
    }

    #[test]
    fn balanced_cuts_tile_and_reduce_max_cost() {
        let g = chain_graph();
        let d = Region3::of_extent(96, 8, 4);
        let m = CostModel::from_graph(&g);
        for n in [2, 3, 4, 7] {
            let cuts = balanced_cuts(&g, d, d, Axis::I, n, &m);
            assert_eq!(cuts.len(), n);
            // Contiguous exact tiling.
            let mut lo = d.i.lo;
            for c in &cuts {
                assert_eq!(c.range(Axis::I).lo, lo);
                lo = c.range(Axis::I).hi;
                assert_eq!(c.j, d.j);
                assert_eq!(c.k, d.k);
            }
            assert_eq!(lo, d.i.hi);
            let uniform = d.split(Axis::I, n);
            assert!(
                max_cost(&g, &cuts, d, &m) <= max_cost(&g, &uniform, d, &m) + 1e-9,
                "balanced cuts cost more than uniform at n = {n}"
            );
        }
    }

    #[test]
    fn skewed_plane_scale_shifts_the_cut() {
        let g = chain_graph();
        let d = Region3::of_extent(64, 8, 4);
        // The low half of the domain is 3× as expensive per cell: the
        // balanced cut must give the first island fewer planes.
        let mut scale = vec![1.0; 64];
        for s in scale.iter_mut().take(32) {
            *s = 3.0;
        }
        let m = CostModel::uniform(g.stage_count()).with_plane_scale(scale);
        let cuts = balanced_cuts(&g, d, d, Axis::I, 2, &m);
        let w0 = cuts[0].range(Axis::I).len();
        let w1 = cuts[1].range(Axis::I).len();
        assert!(w0 < w1, "expensive half not shrunk: {w0} vs {w1}");
        let c0 = island_cost(&g, cuts[0], d, Axis::I, &m);
        let c1 = island_cost(&g, cuts[1], d, Axis::I, &m);
        let ratio = c0.max(c1) / c0.min(c1);
        assert!(ratio < 1.2, "costs not equalized: {c0} vs {c1}");
    }

    #[test]
    fn slack_is_spread_instead_of_front_loaded() {
        let g = chain_graph();
        let d = Region3::of_extent(120, 8, 4);
        let m = CostModel::from_graph(&g);
        let cuts = balanced_cuts(&g, d, d, Axis::I, 14, &m);
        let widths: Vec<i64> = cuts.iter().map(|c| c.range(Axis::I).len() as i64).collect();
        // 120 = 8·9 + 6·8: a pure greedy carve under the min-max cap
        // yields thirteen 9-plane islands and a starved 3-plane tail;
        // the spreading pass must keep every island within one plane of
        // the rest (the cost model is near-uniform per plane here).
        let (min_w, max_w) = (widths.iter().min().unwrap(), widths.iter().max().unwrap());
        assert!(max_w - min_w <= 1, "slack not spread: widths {widths:?}");
        assert_eq!(widths.iter().sum::<i64>(), 120);
        // And spreading must not raise the min-max objective above the
        // unavoidable 9-plane-interior bound.
        let interior9 = island_cost(
            &g,
            slab(d, Axis::I, d.i.lo + 9, d.i.lo + 18),
            d,
            Axis::I,
            &m,
        );
        assert!(max_cost(&g, &cuts, d, &m) <= interior9 + 1e-9);
    }

    #[test]
    fn degenerate_more_islands_than_planes() {
        let g = chain_graph();
        let d = Region3::of_extent(3, 8, 4);
        let m = CostModel::uniform(g.stage_count());
        let cuts = balanced_cuts(&g, d, d, Axis::I, 5, &m);
        assert_eq!(cuts.len(), 5);
        assert_eq!(cuts, d.split(Axis::I, 5));
        assert!(cuts[3].is_empty() && cuts[4].is_empty());
    }

    #[test]
    fn single_island_takes_everything() {
        let g = chain_graph();
        let d = Region3::of_extent(24, 8, 4);
        let m = CostModel::from_graph(&g);
        assert_eq!(balanced_cuts(&g, d, d, Axis::I, 1, &m), vec![d]);
    }

    #[test]
    fn suggest_k_stays_at_one_without_sync_cost() {
        // With free synchronization there is nothing to amortize, and
        // the redundant-compute chain is monotone in k: fusing can only
        // cost more per step.
        let g = chain_graph();
        let d = Region3::of_extent(40, 8, 4);
        let m = CostModel::uniform(g.stage_count());
        let x = FieldId(0);
        for part in d.split(Axis::I, 4) {
            assert_eq!(suggest_k(&g, x, part, d, Axis::I, &m, 0.0, 8), 1);
        }
    }

    #[test]
    fn suggest_k_amortizes_expensive_sync() {
        let g = chain_graph();
        let d = Region3::of_extent(40, 8, 4);
        let m = CostModel::uniform(g.stage_count());
        let x = FieldId(0);
        let part = d.split(Axis::I, 4)[1];
        // A sync as expensive as computing the island several times
        // over must push the fuse depth up...
        let k = suggest_k(&g, x, part, d, Axis::I, &m, 1e6, 8);
        assert!(k > 1, "expensive sync not amortized: k = {k}");
        // ...and deeper fusing monotonically pays off more as the sync
        // cost grows.
        let k2 = suggest_k(&g, x, part, d, Axis::I, &m, 1e9, 8);
        assert!(k2 >= k, "k not monotone in sync cost: {k2} < {k}");
    }

    #[test]
    fn suggest_k_balances_halo_growth_against_sync() {
        // An intermediate sync cost lands between the extremes: more
        // than 1, less than max_k — i.e. the k-dependent halo growth
        // is actually priced, not ignored.
        let g = chain_graph();
        let d = Region3::of_extent(24, 4, 2);
        let m = CostModel::uniform(g.stage_count());
        let x = FieldId(0);
        let part = d.split(Axis::I, 4)[1];
        let one_step = island_cost(&g, part, d, Axis::I, &m);
        let k = suggest_k(&g, x, part, d, Axis::I, &m, 1.5 * one_step, 16);
        assert!(
            k > 1 && k < 16,
            "sync of 1.5 island-steps should pick an interior depth, got {k}"
        );
    }

    #[test]
    fn choose_tile_huge_cache_takes_whole_domain() {
        let g = chain_graph();
        let d = Region3::of_extent(24, 16, 4);
        let (ti, tj) = choose_tile(&g, d, usize::MAX / 4);
        assert_eq!((ti, tj), (24, 16));
    }

    #[test]
    fn choose_tile_respects_budget_and_floors_at_unit() {
        let g = chain_graph();
        let d = Region3::of_extent(24, 16, 4);
        // chain_graph: 2 live buffers, cumulative i-halo span 2, no j halo.
        let buffers = g.max_live_buffers();
        let per_cell = buffers * d.k.len() * crate::block::BYTES_PER_CELL;
        let budget = 40 * per_cell; // a handful of columns
        let (ti, tj) = choose_tile(&g, d, budget);
        assert!(
            (ti + 2) * tj * per_cell <= budget,
            "tile ({ti},{tj}) overflows"
        );
        assert!(ti >= 1 && tj >= 1);
        // Absurdly small budget: best-effort 1×1, never zero.
        assert_eq!(choose_tile(&g, d, 1), (1, 1));
    }

    #[test]
    fn choose_tile_stretches_the_halo_axis() {
        let g = chain_graph();
        let d = Region3::of_extent(64, 64, 2);
        let buffers = g.max_live_buffers();
        let per_cell = buffers * d.k.len() * crate::block::BYTES_PER_CELL;
        // chain_graph's halo lies along i only, so the halo-waste share
        // of a tile's footprint is hi/ti — minimized by stretching the
        // *halo* axis (exactly the block planner's depth-maximization
        // logic), not the halo-free one.
        let (ti, tj) = choose_tile(&g, d, 96 * per_cell);
        assert!(
            ti > tj,
            "halo axis should get the longer extent: got ({ti},{tj})"
        );
        assert!((ti + 2) * tj * per_cell <= 96 * per_cell);
    }

    #[test]
    fn measured_plane_scale_normalizes_rates() {
        let d = Region3::of_extent(10, 2, 2);
        let parts = d.split(Axis::I, 2);
        // Island 0 measured 3× the per-cell rate of island 1 (equal
        // cells → mean rate is the average of the two).
        let stats = [(300u64, 100u64), (100, 100)];
        let scale = measured_plane_scale(&parts, Axis::I, d.i, &stats);
        assert_eq!(scale.len(), 10);
        assert!((scale[0] - 1.5).abs() < 1e-12, "{scale:?}");
        assert!((scale[9] - 0.5).abs() < 1e-12, "{scale:?}");
        // Unmeasured islands keep scale 1.
        let scale = measured_plane_scale(&parts, Axis::I, d.i, &[(300, 100), (0, 0)]);
        assert!((scale[9] - 1.0).abs() < 1e-12, "{scale:?}");
    }
}
