//! Stencil access patterns: which neighbour offsets a stage reads.
//!
//! Every input of a stage (see [`crate::stage::StageDef`]) carries a
//! [`StencilPattern`] — the finite set of offsets `(di, dj, dk)` the kernel
//! reads relative to the cell it writes. The pattern's [`Halo3`] is the
//! quantity that drives all dependency analysis: to compute a region `R` of
//! the output, the input must be available on `R.expand(halo)`.

use crate::region::Halo3;
use std::fmt;

/// A single relative offset read by a stencil.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub struct Offset3 {
    /// Offset along the first axis.
    pub di: i64,
    /// Offset along the second axis.
    pub dj: i64,
    /// Offset along the third axis.
    pub dk: i64,
}

impl Offset3 {
    /// Creates an offset.
    #[inline]
    pub fn new(di: i64, dj: i64, dk: i64) -> Self {
        Offset3 { di, dj, dk }
    }

    /// The centre offset `(0, 0, 0)`.
    pub const CENTER: Offset3 = Offset3 {
        di: 0,
        dj: 0,
        dk: 0,
    };
}

impl fmt::Display for Offset3 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({},{},{})", self.di, self.dj, self.dk)
    }
}

/// The set of offsets a kernel reads from one input field.
///
/// # Examples
///
/// ```
/// use stencil_engine::{StencilPattern, Offset3};
/// // Donor-cell flux along i reads the cell and its lower-i neighbour.
/// let p = StencilPattern::from_offsets([(0, 0, 0), (-1, 0, 0)]);
/// assert_eq!(p.halo().i_neg, 1);
/// assert_eq!(p.halo().i_pos, 0);
/// assert!(p.contains(Offset3::new(-1, 0, 0)));
/// ```
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct StencilPattern {
    offsets: Vec<Offset3>,
}

impl StencilPattern {
    /// Pattern reading only the centre cell.
    pub fn point() -> Self {
        StencilPattern {
            offsets: vec![Offset3::CENTER],
        }
    }

    /// Builds a pattern from `(di, dj, dk)` tuples. Duplicates are removed
    /// and the offsets are kept sorted, so patterns compare structurally.
    pub fn from_offsets<I>(offsets: I) -> Self
    where
        I: IntoIterator<Item = (i64, i64, i64)>,
    {
        let mut v: Vec<Offset3> = offsets
            .into_iter()
            .map(|(di, dj, dk)| Offset3::new(di, dj, dk))
            .collect();
        v.sort_unstable();
        v.dedup();
        assert!(
            !v.is_empty(),
            "a stencil pattern must read at least one offset"
        );
        StencilPattern { offsets: v }
    }

    /// The full box of offsets `[-n..=n]` along a single axis and centre
    /// elsewhere, e.g. `axis_box(1, 0, 0)` = `{(-1,0,0),(0,0,0),(1,0,0)}`.
    pub fn axis_box(ri: i64, rj: i64, rk: i64) -> Self {
        let mut v = Vec::new();
        for di in -ri..=ri {
            for dj in -rj..=rj {
                for dk in -rk..=rk {
                    v.push((di, dj, dk));
                }
            }
        }
        Self::from_offsets(v)
    }

    /// The 7-point pattern: centre plus the six face neighbours.
    pub fn seven_point() -> Self {
        Self::from_offsets([
            (0, 0, 0),
            (-1, 0, 0),
            (1, 0, 0),
            (0, -1, 0),
            (0, 1, 0),
            (0, 0, -1),
            (0, 0, 1),
        ])
    }

    /// The offsets, sorted.
    #[inline]
    pub fn offsets(&self) -> &[Offset3] {
        &self.offsets
    }

    /// Number of offsets read.
    #[inline]
    pub fn len(&self) -> usize {
        self.offsets.len()
    }

    /// Whether the pattern is empty (never true for constructed patterns).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.offsets.is_empty()
    }

    /// Whether `o` is read by this pattern.
    pub fn contains(&self, o: Offset3) -> bool {
        self.offsets.binary_search(&o).is_ok()
    }

    /// The halo (directional reach) of the pattern.
    pub fn halo(&self) -> Halo3 {
        let mut h = Halo3::ZERO;
        for o in &self.offsets {
            h.i_neg = h.i_neg.max(-o.di);
            h.i_pos = h.i_pos.max(o.di);
            h.j_neg = h.j_neg.max(-o.dj);
            h.j_pos = h.j_pos.max(o.dj);
            h.k_neg = h.k_neg.max(-o.dk);
            h.k_pos = h.k_pos.max(o.dk);
        }
        h
    }

    /// Union of two patterns (a kernel reading through both).
    pub fn union(&self, other: &StencilPattern) -> StencilPattern {
        let mut v = self.offsets.clone();
        v.extend_from_slice(&other.offsets);
        v.sort_unstable();
        v.dedup();
        StencilPattern { offsets: v }
    }

    /// Whether the pattern reads only the centre cell.
    pub fn is_pointwise(&self) -> bool {
        self.offsets == [Offset3::CENTER]
    }
}

impl fmt::Debug for StencilPattern {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "StencilPattern[")?;
        for (n, o) in self.offsets.iter().enumerate() {
            if n > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{o}")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn point_pattern() {
        let p = StencilPattern::point();
        assert!(p.is_pointwise());
        assert!(p.halo().is_zero());
        assert_eq!(p.len(), 1);
    }

    #[test]
    fn from_offsets_dedups_and_sorts() {
        let p = StencilPattern::from_offsets([(1, 0, 0), (0, 0, 0), (1, 0, 0)]);
        assert_eq!(p.len(), 2);
        assert_eq!(p.offsets()[0], Offset3::CENTER);
    }

    #[test]
    fn halo_is_directional() {
        let p = StencilPattern::from_offsets([(0, 0, 0), (-2, 0, 0), (0, 1, 0)]);
        let h = p.halo();
        assert_eq!(h.i_neg, 2);
        assert_eq!(h.i_pos, 0);
        assert_eq!(h.j_neg, 0);
        assert_eq!(h.j_pos, 1);
        assert_eq!(h.k_neg, 0);
    }

    #[test]
    fn seven_point_halo_uniform() {
        let p = StencilPattern::seven_point();
        assert_eq!(p.len(), 7);
        assert_eq!(p.halo(), Halo3::uniform(1));
    }

    #[test]
    fn axis_box_counts() {
        let p = StencilPattern::axis_box(1, 1, 1);
        assert_eq!(p.len(), 27);
        let q = StencilPattern::axis_box(1, 0, 0);
        assert_eq!(q.len(), 3);
    }

    #[test]
    fn union_merges() {
        let a = StencilPattern::from_offsets([(0, 0, 0), (-1, 0, 0)]);
        let b = StencilPattern::from_offsets([(0, 0, 0), (0, -1, 0)]);
        let u = a.union(&b);
        assert_eq!(u.len(), 3);
        assert_eq!(u.halo().i_neg, 1);
        assert_eq!(u.halo().j_neg, 1);
    }

    #[test]
    fn contains_lookup() {
        let p = StencilPattern::seven_point();
        assert!(p.contains(Offset3::new(0, 0, 1)));
        assert!(!p.contains(Offset3::new(1, 1, 0)));
    }

    #[test]
    #[should_panic]
    fn empty_pattern_panics() {
        let _ = StencilPattern::from_offsets(std::iter::empty());
    }
}
