//! The real MPDATA graphs must lint clean: zero conformance
//! diagnostics for every boundary condition and kernel path, zero
//! disjointness diagnostics for representative island schedules.

use islands_analysis::{check_disjointness, check_problem, islands_plan, KernelPath};
use islands_core::{Partition, Variant};
use mpdata::{Boundary, MpdataProblem};
use stencil_engine::{trace, Axis, Range1, Region3};

/// Mixed positive/negative bases shake out coordinate-system bugs.
fn domain() -> Region3 {
    Region3::new(Range1::new(2, 7), Range1::new(-1, 3), Range1::new(3, 6))
}

#[test]
fn all_17_stages_conform_under_every_config() {
    if !trace::is_enabled() {
        return; // conformance needs the debug-only recorder
    }
    for bc in [Boundary::Open, Boundary::Periodic] {
        let problem = MpdataProblem::standard().with_boundary(bc);
        for path in [KernelPath::Dispatch, KernelPath::Scalar] {
            let rep = check_problem(&problem, domain(), path).unwrap();
            assert_eq!(rep.stages, 17);
            assert_eq!(rep.cells, 17 * domain().cells());
            assert_eq!(
                rep.diagnostics,
                vec![],
                "bc={bc:?} path={path:?} must lint clean"
            );
        }
    }
}

#[test]
fn iord3_graph_conforms_too() {
    if !trace::is_enabled() {
        return;
    }
    let problem = MpdataProblem::with_iord(3);
    for path in [KernelPath::Dispatch, KernelPath::Scalar] {
        let rep = check_problem(&problem, domain(), path).unwrap();
        assert!(rep.stages > 17, "iord=3 adds stages");
        assert_eq!(rep.diagnostics, vec![]);
    }
}

#[test]
fn real_island_schedules_are_disjoint() {
    let problem = MpdataProblem::standard();
    let d = Region3::of_extent(24, 12, 6);
    for partition in [
        Partition::one_d(d, Variant::A, 2).unwrap(),
        Partition::one_d(d, Variant::B, 3).unwrap(),
        Partition::grid2d(d, 2, 2).unwrap(),
        // More islands than i-slabs: surplus teams idle.
        Partition::one_d(d, Variant::A, 16).unwrap(),
    ] {
        for split_axis in [Axis::J, Axis::K] {
            let sizes: Vec<usize> = (0..partition.islands()).map(|n| 1 + n % 3).collect();
            let plan = islands_plan(
                &problem,
                d,
                partition.parts(),
                &sizes,
                split_axis,
                64 * 1024,
            )
            .unwrap();
            let found = check_disjointness(&plan);
            assert_eq!(
                found,
                vec![],
                "{} split={split_axis:?} must be race-free",
                partition.description()
            );
        }
    }
}

#[test]
fn prime_extent_schedule_is_disjoint() {
    let problem = MpdataProblem::standard();
    let d = Region3::new(Range1::new(-3, 10), Range1::new(2, 9), Range1::new(0, 5));
    let partition = Partition::one_d(d, Variant::A, 3).unwrap();
    let plan = islands_plan(
        &problem,
        d,
        partition.parts(),
        &[2, 2, 2],
        Axis::J,
        64 * 1024,
    )
    .unwrap();
    assert_eq!(check_disjointness(&plan), vec![]);
}
