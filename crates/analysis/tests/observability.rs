//! Cross-checks runtime observability against the static analyzer.
//!
//! A traced islands run reports, per island, how many redundant halo
//! cells it recomputed (the `redundant` column of `--metrics`). Those
//! counts come from the plan's per-epoch bookkeeping, so they must
//! equal the overlap volumes `islands_core::per_island_extra` derives
//! purely from the stage graph and the partition — every step, every
//! island, exactly. A drift between the two would mean either the
//! planner schedules work the analyzer does not predict, or the
//! analyzer's Table-2 accounting is wrong.

use islands_core::{extra_elements, per_island_extra, Partition, Variant};
use mpdata::{gaussian_pulse, mpdata_graph, IslandsExecutor, MpdataProblem};
use stencil_engine::{Axis, Region3};
use work_scheduler::{TeamSpec, WorkerPool};

/// Runs `steps` traced islands steps and returns the aggregated
/// per-step metrics (island order = partition order).
fn traced_metrics(
    d: Region3,
    islands: usize,
    workers: usize,
    steps: usize,
) -> islands_trace::metrics::RunMetrics {
    let pool = WorkerPool::new(workers);
    let exec = IslandsExecutor::with_problem(
        &pool,
        TeamSpec::even(workers, islands),
        Axis::I,
        MpdataProblem::with_iord(2),
    );
    let mut fields = gaussian_pulse(d, (0.3, 0.0, 0.0));
    let session = islands_trace::Session::start();
    exec.run(&mut fields, steps).unwrap();
    let drained = session.finish();
    assert_eq!(drained.dropped, 0, "ring buffers wrapped; grow capacity");
    islands_trace::metrics::RunMetrics::aggregate(&drained)
}

#[test]
fn measured_redundant_cells_match_static_overlap_volumes() {
    let (graph, _) = mpdata_graph();
    let d = Region3::of_extent(48, 24, 8);
    let steps = 2;
    // One rank per island, and islands split across two ranks: the
    // rank slices of a block region partition it, so the measured sum
    // must be rank-count independent.
    for (islands, workers) in [(1, 1), (2, 2), (4, 4), (2, 4)] {
        // IslandsExecutor's Axis::I partition is Partition::one_d
        // variant A: both call Region3::split(Axis::I, islands).
        let p = Partition::one_d(d, Variant::A, islands).unwrap();
        let expected: Vec<u64> = per_island_extra(&graph, &p)
            .into_iter()
            .map(|c| c as u64)
            .collect();
        let metrics = traced_metrics(d, islands, workers, steps);
        assert_eq!(metrics.steps.len(), steps);
        for step in &metrics.steps {
            let measured: Vec<u64> = step
                .islands
                .iter()
                .filter(|m| m.island != islands_trace::NO_ISLAND)
                .map(|m| m.redundant_cells)
                .collect();
            assert_eq!(
                measured, expected,
                "P={islands} W={workers} step {}: traced redundant cells \
                 diverge from the analyzer's overlap volumes",
                step.step
            );
        }
    }
}

#[test]
fn measured_totals_match_extra_elements_accounting() {
    let (graph, _) = mpdata_graph();
    let d = Region3::of_extent(60, 24, 8);
    let islands = 3;
    let p = Partition::one_d(d, Variant::A, islands).unwrap();
    let e = extra_elements(&graph, &p);
    let metrics = traced_metrics(d, islands, islands, 1);
    let step = &metrics.steps[0];
    let computed: u64 = step.islands.iter().map(|m| m.computed_cells).sum();
    let redundant: u64 = step.islands.iter().map(|m| m.redundant_cells).sum();
    // Every kernel span tags the cells it swept, so the island sums
    // reproduce the enlarged-schedule totals of the Table-2 analysis.
    assert_eq!(computed, e.total_updates as u64);
    assert_eq!(redundant, e.extra_updates() as u64);
}
