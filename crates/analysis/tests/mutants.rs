//! Regression pins: the linter must *fail* on seeded bugs.
//!
//! Each test feeds a known-bad declaration or schedule to the analyzer
//! and asserts the specific diagnostic code comes back — so a future
//! refactor cannot silently lobotomize a check.

use islands_analysis::{
    check_disjointness, check_graph, islands_plan, islands_plan_dynamic, islands_plan_fused,
    with_offset_removed, DiagnosticCode, KernelPath, PlannedAccess,
};
use mpdata::MpdataProblem;
use stencil_engine::{trace, Axis, Offset3, Range1, Region3, StageGraph, StencilPattern};

fn domain() -> Region3 {
    Region3::new(Range1::new(2, 7), Range1::new(-1, 3), Range1::new(3, 6))
}

const CACHE: usize = 64 * 1024;

#[test]
fn dropped_offset_is_an_undeclared_read() {
    if !trace::is_enabled() {
        return;
    }
    let problem = MpdataProblem::standard();
    let mutated = with_offset_removed(
        problem.graph(),
        0,
        0,
        Offset3 {
            di: -1,
            dj: 0,
            dk: 0,
        },
    );
    for path in [KernelPath::Dispatch, KernelPath::Scalar] {
        let rep = check_graph(
            &mutated,
            problem.kinds(),
            problem.boundary(),
            domain(),
            path,
        )
        .unwrap();
        assert!(
            rep.diagnostics
                .iter()
                .any(|d| d.code == DiagnosticCode::UndeclaredRead
                    && d.site == "flux_i"
                    && d.field == "x"
                    && d.detail.contains("(-1, 0, 0)")),
            "expected the undeclared (-1,0,0) read of x, got: {:?}",
            rep.diagnostics
        );
    }
}

/// Widens one declared pattern with an offset the kernel never reads.
fn with_offset_added(
    graph: &StageGraph,
    stage: usize,
    slot: usize,
    o: (i64, i64, i64),
) -> StageGraph {
    let mut stages = graph.stages().to_vec();
    let (_, pat) = &mut stages[stage].inputs[slot];
    let mut offsets: Vec<(i64, i64, i64)> =
        pat.offsets().iter().map(|p| (p.di, p.dj, p.dk)).collect();
    offsets.push(o);
    *pat = StencilPattern::from_offsets(offsets);
    StageGraph::build(graph.fields().clone(), stages).unwrap()
}

#[test]
fn padded_pattern_is_an_overdeclared_offset() {
    if !trace::is_enabled() {
        return;
    }
    let problem = MpdataProblem::standard();
    // Stage 0 reads the Courant field u1 pointwise; declare a phantom
    // (0, 0, -1) dependency on it.
    let mutated = with_offset_added(problem.graph(), 0, 1, (0, 0, -1));
    let rep = check_graph(
        &mutated,
        problem.kinds(),
        problem.boundary(),
        domain(),
        KernelPath::Dispatch,
    )
    .unwrap();
    assert!(
        rep.diagnostics
            .iter()
            .any(|d| d.code == DiagnosticCode::OverdeclaredOffset
                && d.site == "flux_i"
                && d.detail.contains("(0, 0, -1)")),
        "expected the phantom (0,0,-1) offset, got: {:?}",
        rep.diagnostics
    );
}

#[test]
fn overlapping_parts_are_a_cross_team_overlap() {
    let problem = MpdataProblem::standard();
    let d = Region3::of_extent(16, 12, 6);
    let halves = d.split(Axis::I, 2);
    let grown = halves[1].with_range(Axis::I, Range1::new(halves[1].i.lo - 1, halves[1].i.hi));
    let plan = islands_plan(&problem, d, &[halves[0], grown], &[2, 2], Axis::J, CACHE).unwrap();
    let found = check_disjointness(&plan);
    assert!(
        found
            .iter()
            .any(|f| f.code == DiagnosticCode::CrossTeamOverlap && f.field == "xout"),
        "expected a cross-team xout overlap, got: {found:?}"
    );
}

#[test]
fn widened_rank_slices_are_an_intra_team_overlap() {
    let problem = MpdataProblem::standard();
    let d = Region3::of_extent(16, 12, 6);
    let parts = d.split(Axis::I, 2);
    let split = Axis::J;
    let mut plan = islands_plan(&problem, d, &parts, &[2, 2], split, CACHE).unwrap();
    for team in &mut plan.teams {
        for ep in &mut team.epochs {
            if let Some(rank0) = ep.per_rank.first_mut() {
                for acc in rank0.iter_mut().filter(|a| a.write) {
                    let r = acc.region.range(split);
                    let hi = (r.hi + 1).min(d.range(split).hi);
                    acc.region = acc.region.with_range(split, Range1::new(r.lo, hi));
                }
            }
        }
    }
    let found = check_disjointness(&plan);
    assert!(
        found
            .iter()
            .any(|f| f.code == DiagnosticCode::IntraTeamOverlap),
        "expected an intra-team overlap, got: {found:?}"
    );
}

#[test]
fn writing_an_external_is_flagged() {
    let problem = MpdataProblem::standard();
    let d = Region3::of_extent(16, 12, 6);
    let parts = d.split(Axis::I, 2);
    let mut plan = islands_plan(&problem, d, &parts, &[1, 1], Axis::J, CACHE).unwrap();
    let x = plan.field_names.iter().position(|n| n == "x").unwrap();
    assert!(plan.external[x]);
    plan.teams[0].epochs[0].per_rank[0].push(PlannedAccess {
        field: x,
        region: parts[0],
        write: true,
    });
    let found = check_disjointness(&plan);
    assert!(
        found
            .iter()
            .any(|f| f.code == DiagnosticCode::ExternalWrite && f.field == "x"),
        "expected an external-write, got: {found:?}"
    );
}

#[test]
fn deleting_a_producer_epoch_is_an_uncovered_read() {
    let problem = MpdataProblem::standard();
    let d = Region3::of_extent(16, 12, 6);
    let parts = d.split(Axis::I, 2);
    let mut plan = islands_plan(&problem, d, &parts, &[2, 2], Axis::J, CACHE).unwrap();
    // Drop team 0's very first epoch (block 0, stage flux_i, the f1
    // producer): the low-order update's read of f1 is now uncovered.
    assert!(plan.teams[0].epochs[0].label.contains("flux_i"));
    plan.teams[0].epochs.remove(0);
    let found = check_disjointness(&plan);
    assert!(
        found
            .iter()
            .any(|f| f.code == DiagnosticCode::UncoveredRead && f.field == "f1"),
        "expected an uncovered read of f1, got: {found:?}"
    );
}

#[test]
fn dropping_an_islands_output_writes_is_an_uncovered_output() {
    let problem = MpdataProblem::standard();
    let d = Region3::of_extent(16, 12, 6);
    let parts = d.split(Axis::I, 2);
    let mut plan = islands_plan(&problem, d, &parts, &[2, 2], Axis::J, CACHE).unwrap();
    // Team 1 never writes xout: with the persistent-plan executors the
    // output buffer is reused across steps, so its half would silently
    // keep the previous step's values.
    let out = plan.field_names.iter().position(|n| n == "xout").unwrap();
    for ep in &mut plan.teams[1].epochs {
        for accs in &mut ep.per_rank {
            accs.retain(|a| !(a.write && a.field == out));
        }
    }
    let found = check_disjointness(&plan);
    assert!(
        found
            .iter()
            .any(|f| f.code == DiagnosticCode::UncoveredOutput && f.field == "xout"),
        "expected an uncovered output over team 1's half, got: {found:?}"
    );
    // The gap must name team 1's (upper-i) half, not team 0's.
    let gap = found
        .iter()
        .find(|f| f.code == DiagnosticCode::UncoveredOutput)
        .unwrap();
    assert!(
        gap.detail.contains("[8, 16)"),
        "gap should cover i = [8, 16), got: {}",
        gap.detail
    );
}

#[test]
fn widened_chunk_is_an_intra_team_overlap_naming_both_slots() {
    let problem = MpdataProblem::standard();
    let d = Region3::of_extent(16, 12, 6);
    let parts = d.split(Axis::I, 2);
    let split = Axis::J;
    // Two ranks × two chunks: four claimable slots per epoch. Widen the
    // first chunk's writes one slab into the second chunk's share — any
    // claim order where different workers take slots 0 and 1 races.
    let mut plan = islands_plan_dynamic(&problem, d, &parts, &[2, 2], split, CACHE, 2).unwrap();
    for team in &mut plan.teams {
        for ep in &mut team.epochs {
            if let Some(chunk0) = ep.per_rank.first_mut() {
                for acc in chunk0.iter_mut().filter(|a| a.write) {
                    let r = acc.region.range(split);
                    let hi = (r.hi + 1).min(d.range(split).hi);
                    acc.region = acc.region.with_range(split, Range1::new(r.lo, hi));
                }
            }
        }
    }
    let found = check_disjointness(&plan);
    let hit = found
        .iter()
        .find(|f| f.code == DiagnosticCode::IntraTeamOverlap)
        .unwrap_or_else(|| panic!("expected an intra-team chunk overlap, got: {found:?}"));
    // The diagnostic must name both overlapping chunk slots and mark the
    // epoch as dynamically scheduled.
    assert!(
        hit.site.contains("(dynamic chunks)"),
        "site should mark the dynamic schedule, got: {}",
        hit.site
    );
    assert!(
        hit.detail.contains("rank 0 writes") && hit.detail.contains("rank 1 writes"),
        "detail should name both chunk slots, got: {}",
        hit.detail
    );
}

#[test]
fn clean_schedule_stays_clean_as_a_control() {
    let problem = MpdataProblem::standard();
    let d = Region3::of_extent(16, 12, 6);
    let parts = d.split(Axis::I, 2);
    let plan = islands_plan(&problem, d, &parts, &[2, 2], Axis::J, CACHE).unwrap();
    assert_eq!(check_disjointness(&plan), vec![]);
    // The dynamic variant of the same schedule is clean too: chunk-level
    // disjointness holds, so any claim order is safe.
    let dyn_plan = islands_plan_dynamic(&problem, d, &parts, &[2, 2], Axis::J, CACHE, 3).unwrap();
    assert_eq!(check_disjointness(&dyn_plan), vec![]);
}

#[test]
fn widened_second_fused_step_is_an_intra_team_overlap() {
    // The temporal-blocking mutant: rank 0's write slices of the
    // *second* fused step (label prefix "step 1 /") are widened past
    // the team split. A checker that only modelled the first or last
    // fused step would miss this.
    let problem = MpdataProblem::standard();
    let d = Region3::of_extent(16, 12, 6);
    let parts = d.split(Axis::I, 2);
    let split = Axis::J;
    let mut plan = islands_plan_fused(&problem, d, &parts, &[2, 2], split, CACHE, 3).unwrap();
    for team in &mut plan.teams {
        for ep in &mut team.epochs {
            if !ep.label.starts_with("step 1 /") {
                continue;
            }
            if let Some(rank0) = ep.per_rank.first_mut() {
                for acc in rank0.iter_mut().filter(|a| a.write) {
                    let r = acc.region.range(split);
                    let hi = (r.hi + 1).min(d.range(split).hi);
                    acc.region = acc.region.with_range(split, Range1::new(r.lo, hi));
                }
            }
        }
    }
    let found = check_disjointness(&plan);
    let hit = found
        .iter()
        .find(|f| f.code == DiagnosticCode::IntraTeamOverlap)
        .unwrap_or_else(|| panic!("expected an intra-team overlap, got: {found:?}"));
    assert!(
        hit.site.contains("step 1 /"),
        "overlap should sit in the second fused step, got: {}",
        hit.site
    );
    // The widened final-stage write lands in an x slot, so the fused
    // model must surface a slot-field overlap too.
    assert!(
        found
            .iter()
            .any(|f| f.code == DiagnosticCode::IntraTeamOverlap && f.field.starts_with("x@slot")),
        "expected an x-slot overlap among: {found:?}"
    );
}

#[test]
fn dropping_first_step_producers_is_an_uncovered_slot_read() {
    // Delete every final-stage (x-slot) write of fused step 0: step 1's
    // advected reads now resolve to a slot nobody produced. Rule 4 must
    // name the slot pseudo-field — this is the machine proof that the
    // halo widening of earlier fused steps is load-bearing.
    let problem = MpdataProblem::standard();
    let d = Region3::of_extent(16, 12, 6);
    let parts = d.split(Axis::I, 2);
    let mut plan = islands_plan_fused(&problem, d, &parts, &[2, 2], Axis::J, CACHE, 2).unwrap();
    let slot0 = plan
        .field_names
        .iter()
        .position(|n| n == "x@slot0")
        .expect("fused plans expose the slot pseudo-fields");
    assert!(!plan.shared[slot0] && !plan.external[slot0]);
    for team in &mut plan.teams {
        for ep in &mut team.epochs {
            for accs in &mut ep.per_rank {
                accs.retain(|a| !(a.write && a.field == slot0));
            }
        }
    }
    let found = check_disjointness(&plan);
    assert!(
        found
            .iter()
            .any(|f| f.code == DiagnosticCode::UncoveredRead && f.field == "x@slot0"),
        "expected an uncovered x@slot0 read, got: {found:?}"
    );
}

#[test]
fn clean_fused_schedule_stays_clean_as_a_control() {
    let problem = MpdataProblem::standard();
    let d = Region3::of_extent(16, 12, 6);
    let parts = d.split(Axis::I, 2);
    for fuse in [2, 3, 4] {
        let plan = islands_plan_fused(&problem, d, &parts, &[2, 2], Axis::J, CACHE, fuse).unwrap();
        assert_eq!(check_disjointness(&plan), vec![], "fuse={fuse} not clean");
    }
    // fuse = 1 degenerates to the classic plan, labels included.
    let fused1 = islands_plan_fused(&problem, d, &parts, &[2, 2], Axis::J, CACHE, 1).unwrap();
    let plain = islands_plan(&problem, d, &parts, &[2, 2], Axis::J, CACHE).unwrap();
    assert_eq!(fused1.field_names, plain.field_names);
    assert_eq!(
        fused1.teams[0].epochs[0].label,
        plain.teams[0].epochs[0].label
    );
}
