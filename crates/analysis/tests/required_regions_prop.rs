//! Property sweep: the backward requirement analysis
//! (`StageGraph::required_regions`) must predict *exactly* what the
//! kernels read.
//!
//! For random sub-partitions of several domains, every stage is run
//! over its required region with access recording on; the hull of the
//! recorded reads of each field must equal the hull of the
//! declaration-derived requirement (`rr[s'].expand(halo) ∩ domain` over
//! consuming stages). MPDATA patterns are boxes, so hull equality is
//! exact, not an approximation — and the externals must agree with the
//! public `external_read_regions` too.

use mpdata::{apply_kind, MpdataProblem};
use std::collections::BTreeMap;
use stencil_engine::rng::{Rng64, Xoshiro256pp};
use stencil_engine::{trace, Array3, FieldId, Range1, Region3};

#[cfg(not(feature = "proptest"))]
const RANDOM_TARGETS: usize = 8;
#[cfg(feature = "proptest")]
const RANDOM_TARGETS: usize = 48;

/// Hull of a point set, tracked incrementally per field.
#[derive(Clone, Copy)]
struct Hull {
    lo: (i64, i64, i64),
    hi: (i64, i64, i64),
}

impl Hull {
    fn empty() -> Self {
        Hull {
            lo: (i64::MAX, i64::MAX, i64::MAX),
            hi: (i64::MIN, i64::MIN, i64::MIN),
        }
    }
    fn add(&mut self, p: (i64, i64, i64)) {
        self.lo = (self.lo.0.min(p.0), self.lo.1.min(p.1), self.lo.2.min(p.2));
        self.hi = (self.hi.0.max(p.0), self.hi.1.max(p.1), self.hi.2.max(p.2));
    }
    fn region(&self) -> Region3 {
        if self.lo.0 > self.hi.0 {
            return Region3::empty();
        }
        Region3::new(
            Range1::new(self.lo.0, self.hi.0 + 1),
            Range1::new(self.lo.1, self.hi.1 + 1),
            Range1::new(self.lo.2, self.hi.2 + 1),
        )
    }
}

/// Runs every live stage over its required region and asserts the
/// recorded per-field read hulls equal the declaration-derived ones.
fn assert_reads_match_requirements(problem: &MpdataProblem, domain: Region3, target: Region3) {
    let graph = problem.graph();
    let rr = graph.required_regions(target, domain);

    // Declaration-derived expectation.
    let mut expected: BTreeMap<usize, Region3> = BTreeMap::new();
    for st in graph.stages() {
        let r = rr[st.id.index()];
        if r.is_empty() {
            continue;
        }
        for (f, pat) in &st.inputs {
            let need = r.expand(pat.halo()).intersect(domain);
            let e = expected.entry(f.index()).or_insert(Region3::empty());
            *e = e.hull(need);
        }
    }

    // Observed reads.
    let mut arrays: Vec<Option<Array3>> = (0..graph.fields().len())
        .map(|n| {
            Some(Array3::from_fn(domain, |i, j, k| {
                1.0 + 0.0625 * (((n as i64 * 13 + i * 3 + j * 5 + k * 7).rem_euclid(11)) as f64)
            }))
        })
        .collect();
    let keys: Vec<trace::ArrayKey> = arrays
        .iter()
        .map(|a| trace::array_key(a.as_ref().unwrap()))
        .collect();
    let field_of: BTreeMap<trace::ArrayKey, usize> =
        keys.iter().enumerate().map(|(n, &k)| (k, n)).collect();
    let mut observed: BTreeMap<usize, Hull> = BTreeMap::new();
    for st in graph.stages() {
        let region = rr[st.id.index()];
        if region.is_empty() {
            continue;
        }
        let mut outs: Vec<Array3> = st
            .outputs
            .iter()
            .map(|f| arrays[f.index()].take().unwrap())
            .collect();
        let log = {
            let ins: Vec<&Array3> = st
                .inputs
                .iter()
                .map(|(f, _)| arrays[f.index()].as_ref().unwrap())
                .collect();
            let mut out_refs: Vec<&mut Array3> = outs.iter_mut().collect();
            let ((), log) = trace::record(|| {
                apply_kind(
                    problem.kind(st.id),
                    domain,
                    problem.boundary(),
                    &ins,
                    &mut out_refs,
                    region,
                )
            });
            log
        };
        for (f, a) in st.outputs.iter().zip(outs) {
            arrays[f.index()] = Some(a);
        }
        for &(key, i, j, k) in &log.reads {
            observed
                .entry(field_of[&key])
                .or_insert_with(Hull::empty)
                .add((i, j, k));
        }
    }

    for n in 0..graph.fields().len() {
        let want = expected.get(&n).copied().unwrap_or(Region3::empty());
        let got = observed.get(&n).map_or(Region3::empty(), Hull::region);
        assert_eq!(
            got,
            want,
            "field `{}`: recorded read hull diverges from required_regions \
             (domain {domain:?}, target {target:?})",
            graph.fields().name(FieldId(n as u32))
        );
    }

    // The public external accounting must agree with observation too.
    for (f, want) in graph.external_read_regions(target, domain) {
        let got = observed
            .get(&f.index())
            .map_or(Region3::empty(), Hull::region);
        assert_eq!(got, want, "external `{}`", graph.fields().name(f));
    }
}

fn sub_box(rng: &mut Xoshiro256pp, domain: Region3) -> Region3 {
    let pick = |rng: &mut Xoshiro256pp, r: Range1| {
        let len = r.len();
        let lo = r.lo + rng.below(len) as i64;
        let hi = lo + 1 + rng.below((r.hi - lo) as usize) as i64;
        Range1::new(lo, hi)
    };
    Region3::new(
        pick(rng, domain.i),
        pick(rng, domain.j),
        pick(rng, domain.k),
    )
}

#[test]
fn required_regions_match_recorded_reads() {
    if !trace::is_enabled() {
        return; // needs the debug-only recorder
    }
    let problem = MpdataProblem::standard();
    let domains = [
        // Prime extents with mixed bases.
        Region3::new(Range1::new(-3, 10), Range1::new(2, 9), Range1::new(0, 5)),
        Region3::of_extent(8, 8, 4),
    ];
    let mut rng = Xoshiro256pp::seed_from_u64(0x1517);
    for domain in domains {
        // P = 1: the whole domain.
        assert_reads_match_requirements(&problem, domain, domain);
        // P > nx: some slabs empty — nothing read for them.
        for part in domain.split(stencil_engine::Axis::I, domain.i.len() + 3) {
            if part.is_empty() {
                assert!(problem
                    .graph()
                    .required_regions(part, domain)
                    .iter()
                    .all(|r| r.is_empty()));
            } else {
                assert_reads_match_requirements(&problem, domain, part);
            }
        }
        // Random sub-boxes.
        for _ in 0..RANDOM_TARGETS {
            let target = sub_box(&mut rng, domain);
            assert_reads_match_requirements(&problem, domain, target);
        }
    }
}
