//! Pass 2 — plan-time disjointness.
//!
//! Reconstructs, from a partition plus a team schedule, exactly the
//! per-rank read/write regions the islands executor will touch —
//! [`islands_plan`] mirrors `IslandsExecutor::step` region for region —
//! and then proves the schedule race-free by region arithmetic alone:
//!
//! * within a team, every `(block, stage)` pair is one barrier-fenced
//!   *epoch*; no rank's write region may intersect another rank's
//!   read-or-write region of the same field inside an epoch;
//! * across teams, the whole time step is one epoch (teams synchronize
//!   only at the step join); no team's write to a *shared* field
//!   (externals and outputs) may intersect any other team's access;
//! * external fields are read-only everywhere;
//! * every read of an island-private (intermediate) field must be
//!   covered by same-team writes from strictly earlier epochs;
//! * the union of all teams' writes to each shared output field must
//!   cover the whole domain — the executors keep output buffers alive
//!   across steps (the persistent-plan path re-claims scratch and
//!   output per step instead of reallocating), so an unwritten output
//!   cell is not merely uninitialized, it silently carries the
//!   previous step's value.
//!
//! The checks are sound for [`Boundary::Open`] problems — the only kind
//! the islands executor accepts — because open-boundary reads clamp
//! into the halo-expanded boxes recorded here.

use crate::diag::{Diagnostic, DiagnosticCode};
use mpdata::MpdataProblem;
use stencil_engine::{tile_grid, Axis, BlockPlanner, FieldRole, PlanBlocksError, Region3};

/// One planned access of one rank inside an epoch.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PlannedAccess {
    /// Field index (into [`SchedulePlan::field_names`]).
    pub field: usize,
    /// The region touched.
    pub region: Region3,
    /// Write (`true`) or read (`false`).
    pub write: bool,
}

/// One barrier-fenced unit of a team's schedule: all ranks run their
/// accesses concurrently, then meet at the team barrier.
#[derive(Clone, Debug)]
pub struct Epoch {
    /// Human-readable position, e.g. `block 2 / stage upd-1`.
    pub label: String,
    /// Accesses per rank (index = rank).
    pub per_rank: Vec<Vec<PlannedAccess>>,
}

/// The full schedule of one team (island) for one time step.
#[derive(Clone, Debug)]
pub struct TeamPlan {
    /// Epochs in execution order.
    pub epochs: Vec<Epoch>,
}

/// Everything the disjointness checker needs about one planned step.
/// All fields are public so tests and `stencil-lint --mutant …` can
/// seed broken schedules.
#[derive(Clone, Debug)]
pub struct SchedulePlan {
    /// The global domain.
    pub domain: Region3,
    /// Field names, indexed by the `field` of [`PlannedAccess`].
    pub field_names: Vec<String>,
    /// Per field: visible to all teams (externals and final outputs)
    /// rather than island-private scratch.
    pub shared: Vec<bool>,
    /// Per field: external input, never legally written in-step.
    pub external: Vec<bool>,
    /// One plan per team, in team order.
    pub teams: Vec<TeamPlan>,
}

/// Builds the [`SchedulePlan`] the islands executor would run: one part
/// per team (empty parts allowed — surplus islands idle), `team_sizes`
/// ranks per team splitting every stage sweep along `split_axis`
/// (`TeamSpec::team_sizes` provides this shape), wavefront blocks under
/// `cache_bytes`.
///
/// # Errors
///
/// Returns [`PlanBlocksError`] when a part's blocks cannot fit the
/// cache budget — the same error `IslandsExecutor::step` would surface.
///
/// # Panics
///
/// Panics if `parts` and `team_sizes` disagree in length or the problem
/// is not open-boundary (the islands executor rejects it too).
pub fn islands_plan(
    problem: &MpdataProblem,
    domain: Region3,
    parts: &[Region3],
    team_sizes: &[usize],
    split_axis: Axis,
    cache_bytes: usize,
) -> Result<SchedulePlan, PlanBlocksError> {
    islands_plan_impl(
        problem,
        domain,
        parts,
        team_sizes,
        split_axis,
        cache_bytes,
        None,
        1,
    )
}

/// Like [`islands_plan`], but for a *temporally blocked* executor that
/// fuses `fuse_steps` whole time steps into one replay epoch. The
/// reconstruction mirrors the fused `StepPlan`: fused step `k-1`
/// computes each team's own part; every earlier step's target is
/// enlarged backwards by one cumulative stencil halo
/// ([`stencil_engine::StageGraph::external_read_regions`] on the
/// advected field), and the advected field ping-pongs between two
/// *team-private* pseudo-fields `x@slot0`/`x@slot1` (fused step
/// `s < k-1` writes slot `s % 2`; fused step `s > 0` reads slot
/// `(s-1) % 2` instead of the shared input). Because the slots are
/// modelled island-private and non-external, the unchanged
/// [`check_disjointness`] rules prove the fusion:
///
/// * rule 4 (coverage) demands every slot read be covered by earlier
///   same-team slot writes — i.e. that each step's halo enlargement is
///   wide enough for the next step's reads;
/// * rules 2–3 prove no same-epoch or cross-team overlap anywhere in
///   the fused step table, including the slot hand-offs;
/// * rule 5 still demands the *last* fused step's shared-output writes
///   tile the domain.
///
/// # Errors
///
/// Returns [`PlanBlocksError`] when a fused step's blocks cannot fit
/// the cache budget.
///
/// # Panics
///
/// Panics like [`islands_plan`], and if `fuse_steps` is zero.
pub fn islands_plan_fused(
    problem: &MpdataProblem,
    domain: Region3,
    parts: &[Region3],
    team_sizes: &[usize],
    split_axis: Axis,
    cache_bytes: usize,
    fuse_steps: usize,
) -> Result<SchedulePlan, PlanBlocksError> {
    assert!(fuse_steps > 0, "need at least one fused step");
    islands_plan_impl(
        problem,
        domain,
        parts,
        team_sizes,
        split_axis,
        cache_bytes,
        None,
        fuse_steps,
    )
}

/// Like [`islands_plan`], but for the *self-scheduled* executor: each
/// epoch is pre-split into `team_size × chunks_per_rank` chunks that
/// ranks claim dynamically. The reconstruction models every chunk as
/// its own schedule slot (`per_rank` index = chunk index) — sound
/// because chunk-level disjointness implies disjointness under **any**
/// assignment of chunks to claiming ranks, which is exactly the freedom
/// dynamic claiming has; the epoch fencing (team barrier) is unchanged.
///
/// # Errors
///
/// Returns [`PlanBlocksError`] when a part's blocks cannot fit the
/// cache budget.
///
/// # Panics
///
/// Panics like [`islands_plan`], and if `chunks_per_rank` is zero.
pub fn islands_plan_dynamic(
    problem: &MpdataProblem,
    domain: Region3,
    parts: &[Region3],
    team_sizes: &[usize],
    split_axis: Axis,
    cache_bytes: usize,
    chunks_per_rank: usize,
) -> Result<SchedulePlan, PlanBlocksError> {
    assert!(chunks_per_rank > 0, "need at least one chunk per rank");
    islands_plan_impl(
        problem,
        domain,
        parts,
        team_sizes,
        split_axis,
        cache_bytes,
        Some(chunks_per_rank),
        1,
    )
}

/// Like [`islands_plan`], but for the *tile-fused* executor: each
/// fused-step target is cut into `(ti, tj)` column tiles and every
/// tile's whole stage chain runs back to back on one rank against
/// rank-private scratch rebased to the tile's halo footprint. The
/// reconstruction models:
///
/// * one slot per **tile** (not per rank) in every epoch. Tile-level
///   disjointness implies disjointness under *any* assignment of tiles
///   to ranks, which covers both the static round-robin and the
///   dynamic claiming schedule — there is no `team_sizes` parameter
///   because the proof is independent of the team shape;
/// * each tile's intermediates as tile-private pseudo-fields
///   (`t0/s0/tile3:flux-i`), mirroring the rank store rebased per
///   tile, so rule 4 demands every chain read be covered by the same
///   tile's earlier-stage writes — the tile-halo sufficiency proof: a
///   producer region too narrow for a consumer's halo read surfaces
///   as `UncoveredRead`;
/// * stage-granular epochs. The real executor fences only between
///   fused steps, but the extra model fences are sound for these
///   graphs: within a tile the chain is serial on one rank (so the
///   per-stage ordering is real), and the only cross-tile mutable
///   fields are the shared output and the fused x slots, all written
///   solely at the final stage over tile regions that partition the
///   step target — while an in-flight step writes slot `ts % 2` and
///   reads slot `(ts - 1) % 2`, never the same slot.
///
/// Unlike the executor, the model does not zero-fill chain-uncovered
/// scratch reads; for graphs that have any (the MPDATA graphs have
/// none) the checker is conservative and reports them.
///
/// # Panics
///
/// Panics like [`islands_plan`], and if `fuse_steps` or a tile extent
/// is zero.
pub fn islands_plan_tiled(
    problem: &MpdataProblem,
    domain: Region3,
    parts: &[Region3],
    tile: (usize, usize),
    fuse_steps: usize,
) -> SchedulePlan {
    let (ti, tj) = tile;
    assert!(ti > 0 && tj > 0, "tile extents must be positive");
    assert!(fuse_steps > 0, "need at least one fused step");
    assert_eq!(
        problem.boundary(),
        mpdata::Boundary::Open,
        "the islands schedule is only defined for open boundaries"
    );
    let k = fuse_steps;
    let graph = problem.graph();
    let fields = graph.fields();
    let xout = problem.xout();
    let x_ext = problem.ext().x;
    let final_stage = graph
        .stages()
        .iter()
        .position(|st| st.outputs == [xout])
        .expect("the graph ends in the advected-output stage");
    let mut field_names: Vec<String> = (0..fields.len())
        .map(|n| fields.name(stencil_engine::FieldId(n as u32)).to_string())
        .collect();
    let mut shared: Vec<bool> = (0..fields.len())
        .map(|n| fields.role(stencil_engine::FieldId(n as u32)) != FieldRole::Intermediate)
        .collect();
    let mut external: Vec<bool> = (0..fields.len())
        .map(|n| fields.role(stencil_engine::FieldId(n as u32)) == FieldRole::External)
        .collect();
    if k > 1 {
        for slot in 0..2 {
            field_names.push(format!("x@slot{slot}"));
            shared.push(false);
            external.push(false);
        }
    }

    let mut teams = Vec::with_capacity(parts.len());
    for (t, &part) in parts.iter().enumerate() {
        let mut epochs = Vec::new();
        if !part.is_empty() {
            // Fused-step targets, identical to the fused reconstruction
            // (and to `fused_step_targets` in the plan builder).
            let mut step_parts = vec![part; k];
            for ts in (0..k - 1).rev() {
                step_parts[ts] = graph
                    .external_read_regions(step_parts[ts + 1], domain)
                    .get(&x_ext)
                    .copied()
                    .unwrap_or_else(Region3::empty);
            }
            for (ts, &sp) in step_parts.iter().enumerate() {
                // Cut the step target into tiles exactly as the plan
                // builder does: the shared balanced grid, I-bands
                // outer, J-columns inner.
                let tiles = tile_grid(sp, (ti, tj));
                // Per-tile backward requirement regions, and one fresh
                // pseudo-field per (tile, intermediate) pair — sharing
                // them across tiles would let one tile's writes
                // spuriously cover another tile's reads.
                let reqs: Vec<Vec<Region3>> = tiles
                    .iter()
                    .map(|&tl| graph.required_regions(tl, domain))
                    .collect();
                let mut scratch = vec![vec![usize::MAX; fields.len()]; tiles.len()];
                for (n, row) in scratch.iter_mut().enumerate() {
                    for (f, slot) in row.iter_mut().enumerate() {
                        let fid = stencil_engine::FieldId(f as u32);
                        if fields.role(fid) == FieldRole::Intermediate {
                            *slot = field_names.len();
                            field_names.push(format!("t{t}/s{ts}/tile{n}:{}", fields.name(fid)));
                            shared.push(false);
                            external.push(false);
                        }
                    }
                }
                for (s, st) in graph.stages().iter().enumerate() {
                    let mut per_rank = Vec::with_capacity(tiles.len());
                    for (n, _) in tiles.iter().enumerate() {
                        let r = reqs[n][st.id.index()];
                        let mut acc = Vec::new();
                        if !r.is_empty() {
                            for &o in &st.outputs {
                                // The final stage's requirement region
                                // of a tile is the tile itself; before
                                // the last fused step it lands in the
                                // step's x slot, not the shared output.
                                let field = if s == final_stage {
                                    if ts + 1 < k {
                                        fields.len() + ts % 2
                                    } else {
                                        o.index()
                                    }
                                } else {
                                    scratch[n][o.index()]
                                };
                                acc.push(PlannedAccess {
                                    field,
                                    region: r,
                                    write: true,
                                });
                            }
                            for (f, pat) in &st.inputs {
                                let field = if *f == x_ext && ts > 0 {
                                    fields.len() + (ts - 1) % 2
                                } else if fields.role(*f) == FieldRole::Intermediate {
                                    scratch[n][f.index()]
                                } else {
                                    f.index()
                                };
                                acc.push(PlannedAccess {
                                    field,
                                    region: r.expand(pat.halo()).intersect(domain),
                                    write: false,
                                });
                            }
                        }
                        per_rank.push(acc);
                    }
                    epochs.push(Epoch {
                        label: format!("step {ts} / stage {} (tiles)", st.name),
                        per_rank,
                    });
                }
            }
        }
        teams.push(TeamPlan { epochs });
    }
    SchedulePlan {
        domain,
        field_names,
        shared,
        external,
        teams,
    }
}

#[allow(clippy::too_many_arguments)]
fn islands_plan_impl(
    problem: &MpdataProblem,
    domain: Region3,
    parts: &[Region3],
    team_sizes: &[usize],
    split_axis: Axis,
    cache_bytes: usize,
    chunks_per_rank: Option<usize>,
    fuse_steps: usize,
) -> Result<SchedulePlan, PlanBlocksError> {
    assert_eq!(parts.len(), team_sizes.len(), "one part per team");
    assert_eq!(
        problem.boundary(),
        mpdata::Boundary::Open,
        "the islands schedule is only defined for open boundaries"
    );
    let k = fuse_steps.max(1);
    let graph = problem.graph();
    let fields = graph.fields();
    let xout = problem.xout();
    let x_ext = problem.ext().x;
    let mut field_names: Vec<String> = (0..fields.len())
        .map(|n| fields.name(stencil_engine::FieldId(n as u32)).to_string())
        .collect();
    let mut shared: Vec<bool> = (0..fields.len())
        .map(|n| fields.role(stencil_engine::FieldId(n as u32)) != FieldRole::Intermediate)
        .collect();
    let mut external: Vec<bool> = (0..fields.len())
        .map(|n| fields.role(stencil_engine::FieldId(n as u32)) == FieldRole::External)
        .collect();
    if k > 1 {
        // The team-private ping-pong buffers the advected field moves
        // through between fused steps. Island-private and non-external,
        // so rule 2 forbids same-epoch slot races, rule 4 demands every
        // slot read be covered by earlier same-team slot writes, and
        // rules 3/5 correctly ignore them.
        for slot in 0..2 {
            field_names.push(format!("x@slot{slot}"));
            shared.push(false);
            external.push(false);
        }
    }

    let mut teams = Vec::with_capacity(parts.len());
    for (&part, &size) in parts.iter().zip(team_sizes) {
        // Dynamic self-scheduling pre-splits each epoch into
        // `size × chunks_per_rank` chunks; a static schedule is the
        // 1-chunk-per-rank special case (slot index = rank).
        let slots = size * chunks_per_rank.unwrap_or(1);
        let slot_word = if chunks_per_rank.is_some() {
            " (dynamic chunks)"
        } else {
            ""
        };
        let mut epochs = Vec::new();
        if !part.is_empty() {
            // Fused-step targets, back to front: step k-1 computes the
            // part itself, step s the hull of step s+1's advected-field
            // reads (one cumulative stencil halo wider, clipped to the
            // domain) — mirroring the fused `StepPlan` builder.
            let mut step_parts = vec![part; k];
            for ts in (0..k.saturating_sub(1)).rev() {
                step_parts[ts] = graph
                    .external_read_regions(step_parts[ts + 1], domain)
                    .get(&x_ext)
                    .copied()
                    .unwrap_or_else(Region3::empty);
            }
            for (ts, &step_part) in step_parts.iter().enumerate() {
                let step_word = if k > 1 {
                    format!("step {ts} / ")
                } else {
                    String::new()
                };
                let blocking =
                    BlockPlanner::new(cache_bytes).plan_wavefront(graph, step_part, domain)?;
                for (b, block) in blocking.blocks.iter().enumerate() {
                    for st in graph.stages() {
                        let region = block.stage_regions[st.id.index()];
                        let is_final = st.outputs == [xout];
                        let mut per_rank = Vec::with_capacity(slots);
                        for slot in 0..slots {
                            let mine = mpdata::rank_slice(region, split_axis, slot, slots);
                            let mut acc = Vec::new();
                            if !mine.is_empty() {
                                for &o in &st.outputs {
                                    // Before the last fused step, the
                                    // final stage writes the step's
                                    // x slot, not the shared output.
                                    let field = if is_final && ts + 1 < k {
                                        fields.len() + ts % 2
                                    } else {
                                        o.index()
                                    };
                                    acc.push(PlannedAccess {
                                        field,
                                        region: mine,
                                        write: true,
                                    });
                                }
                                for (f, pat) in &st.inputs {
                                    // After the first fused step, the
                                    // advected input comes from the
                                    // previous step's x slot.
                                    let field = if *f == x_ext && ts > 0 {
                                        fields.len() + (ts - 1) % 2
                                    } else {
                                        f.index()
                                    };
                                    acc.push(PlannedAccess {
                                        field,
                                        region: mine.expand(pat.halo()).intersect(domain),
                                        write: false,
                                    });
                                }
                            }
                            per_rank.push(acc);
                        }
                        epochs.push(Epoch {
                            label: format!("{step_word}block {b} / stage {}{slot_word}", st.name),
                            per_rank,
                        });
                    }
                }
            }
        }
        teams.push(TeamPlan { epochs });
    }
    Ok(SchedulePlan {
        domain,
        field_names,
        shared,
        external,
        teams,
    })
}

/// Proves (or refutes) the plan race-free. Returns all violations, in
/// deterministic order; an empty vector is the proof.
pub fn check_disjointness(plan: &SchedulePlan) -> Vec<Diagnostic> {
    let mut found = Vec::new();
    let fname = |f: usize| plan.field_names[f].clone();

    // Rule 1: externals are read-only, anywhere, by anyone.
    for (t, team) in plan.teams.iter().enumerate() {
        for ep in &team.epochs {
            for (rank, accs) in ep.per_rank.iter().enumerate() {
                for a in accs {
                    if a.write && plan.external[a.field] {
                        found.push(Diagnostic {
                            code: DiagnosticCode::ExternalWrite,
                            site: format!("team {t} rank {rank} / {}", ep.label),
                            field: fname(a.field),
                            detail: format!("schedule writes external field over {:?}", a.region),
                        });
                    }
                }
            }
        }
    }

    // Rule 2: intra-team, per epoch — a rank's write region must not
    // intersect any other rank's read-or-write region of the field.
    for (t, team) in plan.teams.iter().enumerate() {
        for ep in &team.epochs {
            for (ra, accs_a) in ep.per_rank.iter().enumerate() {
                for (rb, accs_b) in ep.per_rank.iter().enumerate() {
                    if ra == rb {
                        continue;
                    }
                    for wa in accs_a.iter().filter(|a| a.write) {
                        for ab in accs_b.iter().filter(|b| b.field == wa.field) {
                            // Write–read pairs are reported once (from
                            // the writer); write–write pairs once per
                            // unordered pair.
                            if (ab.write && ra > rb) || !wa.region.overlaps(ab.region) {
                                continue;
                            }
                            found.push(Diagnostic {
                                code: DiagnosticCode::IntraTeamOverlap,
                                site: format!("team {t} / {}", ep.label),
                                field: fname(wa.field),
                                detail: format!(
                                    "rank {ra} writes {:?} while rank {rb} {} {:?}",
                                    wa.region,
                                    if ab.write { "writes" } else { "reads" },
                                    ab.region
                                ),
                            });
                        }
                    }
                }
            }
        }
    }

    // Rule 3: cross-team, whole step — writes to shared fields must not
    // intersect any other team's access to them.
    let step_accesses = |team: &TeamPlan| -> Vec<PlannedAccess> {
        team.epochs
            .iter()
            .flat_map(|ep| ep.per_rank.iter().flatten().cloned())
            .collect()
    };
    for ta in 0..plan.teams.len() {
        let accs_a = step_accesses(&plan.teams[ta]);
        for tb in 0..plan.teams.len() {
            if ta == tb {
                continue;
            }
            let accs_b = step_accesses(&plan.teams[tb]);
            for wa in accs_a.iter().filter(|a| a.write && plan.shared[a.field]) {
                for ab in accs_b.iter().filter(|b| b.field == wa.field) {
                    if (ab.write && ta > tb) || !wa.region.overlaps(ab.region) {
                        continue;
                    }
                    found.push(Diagnostic {
                        code: DiagnosticCode::CrossTeamOverlap,
                        site: format!("teams {ta}+{tb}"),
                        field: fname(wa.field),
                        detail: format!(
                            "team {ta} writes {:?} while team {tb} {} {:?} with no \
                             intra-step synchronization between teams",
                            wa.region,
                            if ab.write { "writes" } else { "reads" },
                            ab.region
                        ),
                    });
                }
            }
        }
    }

    // Rule 4: coverage — island-private reads must resolve to cells the
    // same team wrote in a strictly earlier epoch.
    for (t, team) in plan.teams.iter().enumerate() {
        let mut written: Vec<(usize, Region3)> = Vec::new();
        for ep in &team.epochs {
            for (rank, accs) in ep.per_rank.iter().enumerate() {
                for rd in accs.iter().filter(|a| !a.write) {
                    if plan.shared[rd.field] {
                        continue; // pre-existing inputs / the output
                    }
                    let mut remaining = vec![rd.region];
                    for (_, wr) in written.iter().filter(|(wf, _)| *wf == rd.field) {
                        remaining = remaining
                            .into_iter()
                            .flat_map(|r| r.subtract(*wr))
                            .collect();
                        if remaining.is_empty() {
                            break;
                        }
                    }
                    if let Some(gap) = remaining.first() {
                        found.push(Diagnostic {
                            code: DiagnosticCode::UncoveredRead,
                            site: format!("team {t} rank {rank} / {}", ep.label),
                            field: fname(rd.field),
                            detail: format!(
                                "reads {:?} but no earlier epoch of this team wrote {:?}",
                                rd.region, gap
                            ),
                        });
                    }
                }
            }
            // Merge this epoch's writes only after its reads were
            // checked: same-epoch write→read has no fence between them.
            for accs in &ep.per_rank {
                for wr in accs.iter().filter(|a| a.write) {
                    written.push((wr.field, wr.region));
                }
            }
        }
    }

    // Rule 5: output coverage — every domain cell of each shared,
    // non-external field must be written by some team. Output buffers
    // persist across steps, so a coverage gap is stale data, not zeros.
    if !plan.domain.is_empty() {
        for f in 0..plan.field_names.len() {
            if !plan.shared[f] || plan.external[f] {
                continue;
            }
            let mut remaining = vec![plan.domain];
            'cover: for team in &plan.teams {
                for ep in &team.epochs {
                    for accs in &ep.per_rank {
                        for wr in accs.iter().filter(|a| a.write && a.field == f) {
                            remaining = remaining
                                .into_iter()
                                .flat_map(|r| r.subtract(wr.region))
                                .collect();
                            if remaining.is_empty() {
                                break 'cover;
                            }
                        }
                    }
                }
            }
            if let Some(gap) = remaining.first() {
                found.push(Diagnostic {
                    code: DiagnosticCode::UncoveredOutput,
                    site: "whole step".to_string(),
                    field: fname(f),
                    detail: format!(
                        "no team writes {gap:?}; a reused output buffer would hand \
                         those cells the previous step's values"
                    ),
                });
            }
        }
    }

    found.sort();
    found.dedup();
    found
}
