//! `stencil-lint` — CI entry point for both analyzer passes.
//!
//! With no arguments, runs the full matrix — pattern conformance for
//! every boundary condition and kernel path over both the 17-stage
//! (iord = 2) and the extended iord = 3 graphs, then plan-time
//! disjointness over a spread of domains, partitions, team shapes and
//! split axes — and exits non-zero if *any* diagnostic is produced.
//!
//! `--mutant <name>` instead seeds one known-bad input and runs the
//! relevant pass on it; the exit code is still "non-zero iff
//! diagnostics", so CI asserts the linter *fails* on these:
//!
//! * `drop-offset` — stage 0's donor-cell pattern loses `(-1, 0, 0)`,
//!   so the kernel reads an undeclared offset;
//! * `overlap-partition` — two island parts overlap, so both teams
//!   write the same output cells with no intra-step synchronization;
//! * `overlap-ranks` — rank 0's write slices are widened past the team
//!   split, overlapping rank 1 inside barrier-fenced epochs;
//! * `stale-output` — one island's writes to the shared output are
//!   dropped, so its half of a reused output buffer would carry the
//!   previous step's values;
//! * `overlap-chunks` — under a self-scheduled plan, one dynamic
//!   chunk's write region is widened into the next chunk's share, so
//!   two concurrently claimable work units write the same cells;
//! * `fused-overlap-step2` — in a temporally blocked (k = 3) plan, rank
//!   0's write slices of the *second* fused step are widened past the
//!   team split, so the fused epoch table races where the unfused one
//!   would not;
//! * `tile-halo-too-narrow` — in a tile-fused plan, every tile's
//!   first-stage scratch writes are shaved by one I-slab, modelling a
//!   rebased scratch footprint too small for the chain's halo reads;
//!   later stages then read cells no earlier stage of the tile wrote.
//!
//! Exit codes: 0 clean, 1 diagnostics found, 2 tracing unavailable
//! (release build — rebuild in debug).

use islands_analysis::{
    check_disjointness, check_graph, check_problem, islands_plan, islands_plan_dynamic,
    islands_plan_fused, islands_plan_tiled, with_offset_removed, Diagnostic, KernelPath,
};
use islands_core::Partition;
use mpdata::{Boundary, MpdataProblem};
use stencil_engine::{balanced_cuts, trace, Axis, CostModel, Offset3, Range1, Region3};

/// Cache budget used for all disjointness plans — small enough to force
/// several wavefront blocks per island on the lint domains.
const CACHE_BYTES: usize = 64 * 1024;

/// At most this many diagnostics are printed per run.
const PRINT_CAP: usize = 40;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    std::process::exit(run(&args));
}

fn run(args: &[String]) -> i32 {
    if !trace::is_enabled() {
        eprintln!(
            "stencil-lint: access tracing is compiled out of release builds; \
             run with a debug profile (plain `cargo run`)"
        );
        return 2;
    }
    let mutant = match args {
        [] => None,
        [flag, name] if flag == "--mutant" => Some(name.as_str()),
        _ => {
            eprintln!(
                "usage: stencil-lint [--mutant drop-offset|overlap-partition\
                 |overlap-ranks|stale-output|overlap-chunks|fused-overlap-step2\
                 |tile-halo-too-narrow]"
            );
            return 2;
        }
    };
    let diagnostics = match mutant {
        None => full_matrix(),
        Some("drop-offset") => mutant_drop_offset(),
        Some("overlap-partition") => mutant_overlap_partition(),
        Some("overlap-ranks") => mutant_overlap_ranks(),
        Some("stale-output") => mutant_stale_output(),
        Some("overlap-chunks") => mutant_overlap_chunks(),
        Some("fused-overlap-step2") => mutant_fused_overlap_step2(),
        Some("tile-halo-too-narrow") => mutant_tile_halo_too_narrow(),
        Some(other) => {
            eprintln!("stencil-lint: unknown mutant `{other}`");
            return 2;
        }
    };
    report(&diagnostics)
}

fn report(diagnostics: &[Diagnostic]) -> i32 {
    for d in diagnostics.iter().take(PRINT_CAP) {
        println!("{d}");
    }
    if diagnostics.len() > PRINT_CAP {
        println!("... and {} more", diagnostics.len() - PRINT_CAP);
    }
    if diagnostics.is_empty() {
        println!("stencil-lint: clean");
        0
    } else {
        println!("stencil-lint: {} diagnostic(s)", diagnostics.len());
        1
    }
}

/// A small domain with non-trivial (negative and positive) bases, so
/// any global-vs-relative coordinate confusion in a kernel or in the
/// checker itself surfaces immediately.
fn conformance_domain() -> Region3 {
    Region3::new(Range1::new(2, 7), Range1::new(-1, 3), Range1::new(3, 6))
}

fn full_matrix() -> Vec<Diagnostic> {
    let mut all = Vec::new();

    // Pass 1: conformance. iord = 2 is the paper's 17-stage graph; the
    // iord = 3 graph adds the second corrective iteration's stages.
    for (iord, bcs) in [
        (2, &[Boundary::Open, Boundary::Periodic][..]),
        // Periodic dispatch degenerates to the scalar path, already
        // covered by iord = 2; keep the wider graph to Open.
        (3, &[Boundary::Open][..]),
    ] {
        for &bc in bcs {
            let problem = MpdataProblem::with_iord(iord).with_boundary(bc);
            for path in [KernelPath::Dispatch, KernelPath::Scalar] {
                let rep = check_problem(&problem, conformance_domain(), path)
                    .expect("tracing checked at startup");
                println!(
                    "conformance iord={iord} bc={bc:?} path={path}: \
                     {} stages x {} invocations, {} diagnostic(s)",
                    rep.stages,
                    rep.cells / rep.stages.max(1),
                    rep.diagnostics.len()
                );
                all.extend(rep.diagnostics);
            }
        }
    }

    // Pass 2: disjointness over a spread of schedules.
    let problem = MpdataProblem::standard();
    let domains = [
        Region3::of_extent(24, 12, 6),
        // Prime extents (13 × 7 × 5) with mixed bases.
        Region3::new(Range1::new(-3, 10), Range1::new(2, 9), Range1::new(0, 5)),
    ];
    for domain in domains {
        let mut partitions: Vec<(String, Vec<Region3>)> = Vec::new();
        for islands in [1, 2, 4, 16] {
            // 16 islands exceed the slab count of both domains along I:
            // the surplus parts are empty, as in the executor.
            let p = Partition::one_d(domain, islands_core::Variant::A, islands)
                .expect("non-zero island count");
            partitions.push((p.description().to_string(), p.parts().to_vec()));
        }
        let pb = Partition::one_d(domain, islands_core::Variant::B, 3).expect("non-zero");
        partitions.push((pb.description().to_string(), pb.parts().to_vec()));
        let grid = Partition::grid2d(domain, 2, 2).expect("non-zero");
        partitions.push((grid.description().to_string(), grid.parts().to_vec()));

        // Non-uniform cuts from the cost model: slab widths differ, so
        // any "equal shares" assumption in the planner would misalign.
        let model = CostModel::from_graph(problem.graph());
        let balanced = balanced_cuts(problem.graph(), domain, domain, Axis::I, 3, &model);
        partitions.push(("balanced 1D A x 3".to_string(), balanced));

        // Degenerate extremes: a 1-cell-wide island next to the rest of
        // the domain, and more islands than there are I-slabs (the
        // surplus parts are empty, as in the executor).
        let ir = domain.range(Axis::I);
        let sliver = vec![
            domain.with_range(Axis::I, Range1::new(ir.lo, ir.lo + 1)),
            domain.with_range(Axis::I, Range1::new(ir.lo + 1, ir.hi)),
        ];
        partitions.push(("1-cell sliver + remainder".to_string(), sliver));
        let overcut = Partition::one_d(domain, islands_core::Variant::A, ir.len() + 3)
            .expect("non-zero island count");
        partitions.push((
            format!("{} (P > nx)", overcut.description()),
            overcut.parts().to_vec(),
        ));

        for (desc, parts) in &partitions {
            for split_axis in [Axis::J, Axis::K] {
                for shape in ["uniform-2", "mixed"] {
                    let sizes: Vec<usize> = match shape {
                        "uniform-2" => vec![2; parts.len()],
                        _ => (0..parts.len()).map(|n| 1 + n % 3).collect(),
                    };
                    let plan =
                        islands_plan(&problem, domain, parts, &sizes, split_axis, CACHE_BYTES)
                            .expect("lint domains fit the cache budget");
                    let found = check_disjointness(&plan);
                    println!(
                        "disjointness domain={:?} partition={desc} split={split_axis:?} \
                         teams={shape}: {} diagnostic(s)",
                        domain,
                        found.len()
                    );
                    all.extend(found);

                    // Same schedule under dynamic self-scheduling: every
                    // chunk becomes its own claimable slot, so chunk-level
                    // disjointness proves safety for *any* claim order.
                    let dyn_plan = islands_plan_dynamic(
                        &problem,
                        domain,
                        parts,
                        &sizes,
                        split_axis,
                        CACHE_BYTES,
                        3,
                    )
                    .expect("lint domains fit the cache budget");
                    let found = check_disjointness(&dyn_plan);
                    println!(
                        "disjointness domain={:?} partition={desc} split={split_axis:?} \
                         teams={shape} schedule=dynamic(3): {} diagnostic(s)",
                        domain,
                        found.len()
                    );
                    all.extend(found);

                    // Temporally blocked schedules: prove the k-step
                    // fused epoch tables — including the x-slot
                    // hand-offs between fused steps — for the same
                    // partitions. One (axis, shape) combination per
                    // partition keeps the matrix affordable.
                    if split_axis == Axis::J && shape == "uniform-2" {
                        for fuse in [2, 3] {
                            let fused_plan = islands_plan_fused(
                                &problem,
                                domain,
                                parts,
                                &sizes,
                                split_axis,
                                CACHE_BYTES,
                                fuse,
                            )
                            .expect("lint domains fit the cache budget");
                            let found = check_disjointness(&fused_plan);
                            println!(
                                "disjointness domain={:?} partition={desc} \
                                 split={split_axis:?} teams={shape} fuse={fuse}: \
                                 {} diagnostic(s)",
                                domain,
                                found.len()
                            );
                            all.extend(found);
                        }

                        // Tile-fused schedules: slot-per-tile plans
                        // proving chain privacy, tile-halo sufficiency
                        // and output disjointness — a mid-size tile
                        // that straddles part boundaries and a fat
                        // tile that swallows whole parts, alone and
                        // under temporal blocking. (The team shape is
                        // irrelevant: the proof holds for any tile →
                        // rank assignment.)
                        for (ti, tj) in [(3, 2), (64, 64)] {
                            for fuse in [1, 2] {
                                let tiled_plan =
                                    islands_plan_tiled(&problem, domain, parts, (ti, tj), fuse);
                                let found = check_disjointness(&tiled_plan);
                                println!(
                                    "disjointness domain={:?} partition={desc} \
                                     tile={ti}x{tj} fuse={fuse}: {} diagnostic(s)",
                                    domain,
                                    found.len()
                                );
                                all.extend(found);
                            }
                        }
                    }
                }
            }
        }
    }

    // Sliver tiles on a small prime-extent domain: every tile is a
    // single (i, j) column, the degenerate extreme of the tile cutter.
    let domain = Region3::of_extent(11, 7, 4);
    let parts = domain.split(Axis::I, 2);
    for fuse in [1, 2] {
        let plan = islands_plan_tiled(&problem, domain, &parts, (1, 1), fuse);
        let found = check_disjointness(&plan);
        println!(
            "disjointness domain={domain:?} partition=1D x 2 tile=1x1 fuse={fuse}: \
             {} diagnostic(s)",
            found.len()
        );
        all.extend(found);
    }
    all
}

fn mutant_drop_offset() -> Vec<Diagnostic> {
    let problem = MpdataProblem::standard();
    // Stage 0 (donor-cell flux along i) declares x at {(0,0,0), (-1,0,0)};
    // drop the upstream neighbour from the declaration.
    let mutated = with_offset_removed(
        problem.graph(),
        0,
        0,
        Offset3 {
            di: -1,
            dj: 0,
            dk: 0,
        },
    );
    check_graph(
        &mutated,
        problem.kinds(),
        problem.boundary(),
        conformance_domain(),
        KernelPath::Dispatch,
    )
    .expect("tracing checked at startup")
    .diagnostics
}

fn mutant_overlap_partition() -> Vec<Diagnostic> {
    let problem = MpdataProblem::standard();
    let domain = Region3::of_extent(16, 12, 6);
    let halves = domain.split(Axis::I, 2);
    // Widen the second island one slab into the first: both teams now
    // write the overlap of the shared output with no step-internal sync.
    let grown = halves[1].with_range(Axis::I, Range1::new(halves[1].i.lo - 1, halves[1].i.hi));
    let parts = vec![halves[0], grown];
    let plan = islands_plan(&problem, domain, &parts, &[2, 2], Axis::J, CACHE_BYTES)
        .expect("lint domain fits the cache budget");
    check_disjointness(&plan)
}

fn mutant_overlap_ranks() -> Vec<Diagnostic> {
    let problem = MpdataProblem::standard();
    let domain = Region3::of_extent(16, 12, 6);
    let parts = domain.split(Axis::I, 2);
    let split_axis = Axis::J;
    let mut plan = islands_plan(&problem, domain, &parts, &[2, 2], split_axis, CACHE_BYTES)
        .expect("lint domain fits the cache budget");
    // Widen every rank-0 write one slab past its split boundary, into
    // rank 1's share of the same barrier-fenced epoch.
    for team in &mut plan.teams {
        for ep in &mut team.epochs {
            if let Some(rank0) = ep.per_rank.first_mut() {
                for acc in rank0.iter_mut().filter(|a| a.write) {
                    let r = acc.region.range(split_axis);
                    let hi = (r.hi + 1).min(plan.domain.range(split_axis).hi);
                    acc.region = acc.region.with_range(split_axis, Range1::new(r.lo, hi));
                }
            }
        }
    }
    check_disjointness(&plan)
}

fn mutant_overlap_chunks() -> Vec<Diagnostic> {
    let problem = MpdataProblem::standard();
    let domain = Region3::of_extent(16, 12, 6);
    let parts = domain.split(Axis::I, 2);
    let split_axis = Axis::J;
    // Two ranks × two chunks each: four claimable slots per epoch.
    let mut plan = islands_plan_dynamic(
        &problem,
        domain,
        &parts,
        &[2, 2],
        split_axis,
        CACHE_BYTES,
        2,
    )
    .expect("lint domain fits the cache budget");
    // Widen the first chunk's writes one slab into the second chunk's
    // share. Unlike `overlap-ranks` this overlap is between two units a
    // *single* worker may claim back to back — still unsafe, because
    // another worker can claim the second chunk concurrently.
    for team in &mut plan.teams {
        for ep in &mut team.epochs {
            if let Some(chunk0) = ep.per_rank.first_mut() {
                for acc in chunk0.iter_mut().filter(|a| a.write) {
                    let r = acc.region.range(split_axis);
                    let hi = (r.hi + 1).min(plan.domain.range(split_axis).hi);
                    acc.region = acc.region.with_range(split_axis, Range1::new(r.lo, hi));
                }
            }
        }
    }
    check_disjointness(&plan)
}

fn mutant_fused_overlap_step2() -> Vec<Diagnostic> {
    let problem = MpdataProblem::standard();
    let domain = Region3::of_extent(16, 12, 6);
    let parts = domain.split(Axis::I, 2);
    let split_axis = Axis::J;
    let mut plan = islands_plan_fused(
        &problem,
        domain,
        &parts,
        &[2, 2],
        split_axis,
        CACHE_BYTES,
        3,
    )
    .expect("lint domain fits the cache budget");
    // Widen rank 0's writes one slab past the split boundary — but only
    // in the *second* fused step's epochs, so a checker that collapses
    // the fused table to its first (or last) step would miss the race.
    for team in &mut plan.teams {
        for ep in &mut team.epochs {
            if !ep.label.starts_with("step 1 /") {
                continue;
            }
            if let Some(rank0) = ep.per_rank.first_mut() {
                for acc in rank0.iter_mut().filter(|a| a.write) {
                    let r = acc.region.range(split_axis);
                    let hi = (r.hi + 1).min(plan.domain.range(split_axis).hi);
                    acc.region = acc.region.with_range(split_axis, Range1::new(r.lo, hi));
                }
            }
        }
    }
    check_disjointness(&plan)
}

fn mutant_tile_halo_too_narrow() -> Vec<Diagnostic> {
    let problem = MpdataProblem::standard();
    let domain = Region3::of_extent(16, 12, 6);
    let parts = domain.split(Axis::I, 2);
    let mut plan = islands_plan_tiled(&problem, domain, &parts, (4, 4), 1);
    // Shave one I-slab off every tile's first-stage scratch writes: the
    // chain now computes the producer over less than tile + halo —
    // exactly what a rebased scratch footprint one cell too narrow
    // would do — so later stages read cells no stage of the tile wrote.
    for team in &mut plan.teams {
        if let Some(ep) = team.epochs.first_mut() {
            for accs in &mut ep.per_rank {
                for acc in accs.iter_mut().filter(|a| a.write) {
                    let r = acc.region.range(Axis::I);
                    acc.region = acc.region.with_range(Axis::I, Range1::new(r.lo + 1, r.hi));
                }
            }
        }
    }
    check_disjointness(&plan)
}

fn mutant_stale_output() -> Vec<Diagnostic> {
    let problem = MpdataProblem::standard();
    let domain = Region3::of_extent(16, 12, 6);
    let parts = domain.split(Axis::I, 2);
    let mut plan = islands_plan(&problem, domain, &parts, &[2, 2], Axis::J, CACHE_BYTES)
        .expect("lint domain fits the cache budget");
    // Drop the second island's writes to the shared output: its half of
    // the domain is never produced this step, which a reused output
    // buffer (the persistent-plan path) turns into last step's data.
    let out = (0..plan.field_names.len())
        .find(|&f| plan.shared[f] && !plan.external[f])
        .expect("the graph has an output field");
    for ep in &mut plan.teams[1].epochs {
        for accs in &mut ep.per_rank {
            accs.retain(|a| !(a.write && a.field == out));
        }
    }
    check_disjointness(&plan)
}
