//! # islands-analysis
//!
//! Machine-checked access contracts for the islands-of-cores
//! reproduction. The stage graph's declared [`StencilPattern`]s are the
//! single source of truth three subsystems trust — the backward
//! requirement analysis, the block planner and the overlap accounting —
//! so this crate *proves* the two assumptions everything rests on,
//! instead of asserting them by convention:
//!
//! 1. **Pattern conformance** ([`check_problem`] / [`check_graph`]):
//!    every kernel reads exactly the offsets its stage declares and
//!    writes exactly the requested cells of its declared outputs,
//!    observed through the debug-only access recorder of
//!    [`stencil_engine::trace`].
//! 2. **Plan-time disjointness** ([`islands_plan`] /
//!    [`check_disjointness`]): for any partition and team schedule, no
//!    rank's write region intersects another rank's read-or-write
//!    region of the same field within a synchronization epoch, and all
//!    island-private reads are covered by earlier same-team writes.
//!
//! The `stencil-lint` binary wires both passes into CI:
//!
//! ```text
//! cargo run -p islands-analysis --bin stencil-lint
//! ```
//!
//! exits non-zero on any diagnostic (and, via `--mutant …`, proves it
//! *would* catch seeded declaration and schedule bugs).
//!
//! [`StencilPattern`]: stencil_engine::StencilPattern

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod conformance;
mod diag;
mod disjoint;

pub use conformance::{
    check_graph, check_problem, with_offset_removed, ConformanceReport, KernelPath,
    TraceUnavailable,
};
pub use diag::{Diagnostic, DiagnosticCode};
pub use disjoint::{
    check_disjointness, islands_plan, islands_plan_dynamic, islands_plan_fused, islands_plan_tiled,
    Epoch, PlannedAccess, SchedulePlan, TeamPlan,
};
