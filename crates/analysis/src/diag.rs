//! Diagnostics shared by both analyzer passes.

use std::fmt;

/// What kind of contract violation a [`Diagnostic`] reports.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum DiagnosticCode {
    /// A kernel read a cell no declared offset of the stage resolves to.
    UndeclaredRead,
    /// A declared offset the kernel never reads (witnessed at a cell
    /// where boundary resolution is injective, so the miss is real).
    OverdeclaredOffset,
    /// A kernel wrote an array that is not an output of its stage.
    UndeclaredWrite,
    /// A kernel wrote an output cell outside the requested region.
    OutOfRegionWrite,
    /// A kernel failed to write a cell of the requested region.
    MissingWrite,
    /// Two ranks of one team touch overlapping regions of a field within
    /// one barrier-fenced epoch, at least one of them writing.
    IntraTeamOverlap,
    /// Two teams touch overlapping regions of a shared field within one
    /// time step, at least one of them writing.
    CrossTeamOverlap,
    /// A schedule writes an external (read-only) field.
    ExternalWrite,
    /// A team reads an island-private cell no earlier epoch of the same
    /// team has written.
    UncoveredRead,
    /// A domain cell of a shared output field no team ever writes: with
    /// reused (persistent-plan) output buffers it would leak the
    /// previous step's value.
    UncoveredOutput,
}

impl fmt::Display for DiagnosticCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            DiagnosticCode::UndeclaredRead => "undeclared-read",
            DiagnosticCode::OverdeclaredOffset => "overdeclared-offset",
            DiagnosticCode::UndeclaredWrite => "undeclared-write",
            DiagnosticCode::OutOfRegionWrite => "out-of-region-write",
            DiagnosticCode::MissingWrite => "missing-write",
            DiagnosticCode::IntraTeamOverlap => "intra-team-overlap",
            DiagnosticCode::CrossTeamOverlap => "cross-team-overlap",
            DiagnosticCode::ExternalWrite => "external-write",
            DiagnosticCode::UncoveredRead => "uncovered-read",
            DiagnosticCode::UncoveredOutput => "uncovered-output",
        };
        f.write_str(s)
    }
}

/// One analyzer finding, self-contained enough to print and act on.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Diagnostic {
    /// Violation kind.
    pub code: DiagnosticCode,
    /// Where it happened: stage name for conformance findings, a
    /// team/epoch label for disjointness findings.
    pub site: String,
    /// The field involved, by name.
    pub field: String,
    /// Specifics: offsets, cells or regions, human-readable.
    pub detail: String,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{}] {} / field `{}`: {}",
            self.code, self.site, self.field, self.detail
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_compact_and_complete() {
        let d = Diagnostic {
            code: DiagnosticCode::UndeclaredRead,
            site: "flux-i".into(),
            field: "x".into(),
            detail: "offset (-2, 0, 0)".into(),
        };
        let s = d.to_string();
        assert!(s.contains("undeclared-read"));
        assert!(s.contains("flux-i"));
        assert!(s.contains("`x`"));
        assert!(s.contains("(-2, 0, 0)"));
    }
}
