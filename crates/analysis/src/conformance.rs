//! Pass 1 — pattern conformance.
//!
//! Drives every kernel of an MPDATA stage graph over single-cell
//! regions with access recording on ([`stencil_engine::trace`]) and
//! diffs the observed read/write sets against the stage's *declared*
//! [`stencil_engine::StencilPattern`]s and outputs. Because every
//! kernel read is boundary-resolved exactly like the checker's own
//! `resolve` (clamp for [`Boundary::Open`], wrap for
//! [`Boundary::Periodic`]) and kernels read their operands
//! unconditionally, any difference is a genuine declaration/kernel
//! mismatch, not a value-dependent artifact:
//!
//! * a recorded read no declared offset resolves to ⇒ `undeclared-read`;
//! * a declared offset whose resolved cell was never read ⇒
//!   `overdeclared-offset` (sound at *any* cell, complete at interior
//!   cells where resolution is injective);
//! * writes must hit exactly the requested cell of exactly the declared
//!   outputs ⇒ `undeclared-write`, `out-of-region-write`,
//!   `missing-write`.
//!
//! Single-cell regions make attribution exact and keep the
//! fast-path/scalar dispatch of [`mpdata::apply_kind`] all-or-nothing
//! per cell, so both row kernels and scalar kernels are exercised.

use crate::diag::{Diagnostic, DiagnosticCode};
use mpdata::{apply_kind, apply_kind_scalar, Boundary, MpdataProblem, StageKind};
use std::collections::{BTreeMap, BTreeSet};
use std::error::Error;
use std::fmt;
use stencil_engine::{trace, Array3, Offset3, Range1, Region3, StageGraph, StencilPattern};

/// Which kernel implementation the harness drives.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum KernelPath {
    /// [`mpdata::apply_kind`]: row fast paths where eligible, scalar
    /// boundary shells elsewhere (the production dispatch).
    Dispatch,
    /// [`mpdata::apply_kind_scalar`]: the clamp-everything reference
    /// kernels, everywhere.
    Scalar,
}

impl fmt::Display for KernelPath {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            KernelPath::Dispatch => "dispatch",
            KernelPath::Scalar => "scalar",
        })
    }
}

/// Access recording is compiled out of this build (release), so the
/// conformance pass cannot observe anything.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TraceUnavailable;

impl fmt::Display for TraceUnavailable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(
            "access tracing is compiled out of release builds; \
             run the conformance pass from a debug build",
        )
    }
}

impl Error for TraceUnavailable {}

/// Outcome of one conformance run.
#[derive(Clone, Debug)]
pub struct ConformanceReport {
    /// Stages driven.
    pub stages: usize,
    /// Kernel invocations (stages × domain cells).
    pub cells: usize,
    /// Deduplicated findings, in deterministic order.
    pub diagnostics: Vec<Diagnostic>,
}

/// Checks a whole [`MpdataProblem`] (its graph, kernel kinds and
/// boundary) over `domain`.
///
/// # Errors
///
/// [`TraceUnavailable`] when recording is compiled out (release build).
pub fn check_problem(
    problem: &MpdataProblem,
    domain: Region3,
    path: KernelPath,
) -> Result<ConformanceReport, TraceUnavailable> {
    check_graph(
        problem.graph(),
        problem.kinds(),
        problem.boundary(),
        domain,
        path,
    )
}

/// Checks an arbitrary stage graph against the kernels named by
/// `kinds` (one per stage, same order). This is the entry point for
/// regression tests that feed *mutated* declarations to the linter.
///
/// # Errors
///
/// [`TraceUnavailable`] when recording is compiled out (release build).
///
/// # Panics
///
/// Panics when `kinds.len()` differs from the graph's stage count.
pub fn check_graph(
    graph: &StageGraph,
    kinds: &[StageKind],
    bc: Boundary,
    domain: Region3,
    path: KernelPath,
) -> Result<ConformanceReport, TraceUnavailable> {
    if !trace::is_enabled() {
        return Err(TraceUnavailable);
    }
    assert_eq!(
        kinds.len(),
        graph.stage_count(),
        "one kernel kind per stage"
    );
    // One array per field, deterministic positive values (h is a
    // divisor). Values never influence which cells a kernel touches —
    // all kernel reads are unconditional — so any fill works; varied
    // values simply keep the numerics finite.
    let mut arrays: Vec<Option<Array3>> = (0..graph.fields().len())
        .map(|n| {
            Some(Array3::from_fn(domain, |i, j, k| {
                1.0 + 0.125 * (((n as i64 * 31 + i * 7 + j * 5 + k * 3).rem_euclid(17)) as f64)
            }))
        })
        .collect();
    // Heap addresses are stable under moves, so keys taken now remain
    // valid while output arrays are temporarily taken out of `arrays`.
    let keys: Vec<trace::ArrayKey> = arrays
        .iter()
        .map(|a| trace::array_key(a.as_ref().expect("present")))
        .collect();
    let field_of: BTreeMap<trace::ArrayKey, usize> =
        keys.iter().enumerate().map(|(n, &k)| (k, n)).collect();
    let name = |key: trace::ArrayKey| -> String {
        graph
            .fields()
            .name(stencil_engine::FieldId(field_of[&key] as u32))
            .to_string()
    };

    let mut found: BTreeSet<Diagnostic> = BTreeSet::new();
    let mut cells = 0usize;
    for st in graph.stages() {
        let kind = kinds[st.id.index()];
        let mut outs: Vec<Array3> = st
            .outputs
            .iter()
            .map(|f| arrays[f.index()].take().expect("outputs are distinct"))
            .collect();
        let out_keys: BTreeSet<trace::ArrayKey> =
            st.outputs.iter().map(|f| keys[f.index()]).collect();
        {
            let ins: Vec<&Array3> = st
                .inputs
                .iter()
                .map(|(f, _)| arrays[f.index()].as_ref().expect("inputs are not outputs"))
                .collect();
            for (ci, cj, ck) in domain.points() {
                cells += 1;
                let cell = Region3::new(
                    Range1::new(ci, ci + 1),
                    Range1::new(cj, cj + 1),
                    Range1::new(ck, ck + 1),
                );
                let mut out_refs: Vec<&mut Array3> = outs.iter_mut().collect();
                let ((), log) = trace::record(|| match path {
                    KernelPath::Dispatch => apply_kind(kind, domain, bc, &ins, &mut out_refs, cell),
                    KernelPath::Scalar => {
                        apply_kind_scalar(kind, domain, bc, &ins, &mut out_refs, cell)
                    }
                });
                diff_cell(
                    st,
                    &keys,
                    &out_keys,
                    &name,
                    bc,
                    domain,
                    (ci, cj, ck),
                    &log,
                    &mut found,
                );
            }
        }
        for (f, a) in st.outputs.iter().zip(outs) {
            arrays[f.index()] = Some(a);
        }
    }
    Ok(ConformanceReport {
        stages: graph.stage_count(),
        cells,
        diagnostics: found.into_iter().collect(),
    })
}

/// Boundary resolution, bit-for-bit the formula of the kernels' `rd_bc`.
fn resolve(bc: Boundary, d: Region3, i: i64, j: i64, k: i64) -> (i64, i64, i64) {
    match bc {
        Boundary::Open => (
            i.clamp(d.i.lo, d.i.hi - 1),
            j.clamp(d.j.lo, d.j.hi - 1),
            k.clamp(d.k.lo, d.k.hi - 1),
        ),
        Boundary::Periodic => (
            d.i.lo + (i - d.i.lo).rem_euclid(d.i.len() as i64),
            d.j.lo + (j - d.j.lo).rem_euclid(d.j.len() as i64),
            d.k.lo + (k - d.k.lo).rem_euclid(d.k.len() as i64),
        ),
    }
}

/// Diffs one recorded single-cell invocation against the declaration.
#[allow(clippy::too_many_arguments)]
fn diff_cell(
    st: &stencil_engine::StageDef,
    keys: &[trace::ArrayKey],
    out_keys: &BTreeSet<trace::ArrayKey>,
    name: &dyn Fn(trace::ArrayKey) -> String,
    bc: Boundary,
    domain: Region3,
    c: (i64, i64, i64),
    log: &trace::AccessLog,
    found: &mut BTreeSet<Diagnostic>,
) {
    let (ci, cj, ck) = c;
    // Expected reads: per array, the declared offsets resolved at `c`.
    let mut expected: BTreeMap<trace::ArrayKey, BTreeSet<(i64, i64, i64)>> = BTreeMap::new();
    let mut declared: BTreeMap<trace::ArrayKey, Vec<Offset3>> = BTreeMap::new();
    for (f, pat) in &st.inputs {
        let key = keys[f.index()];
        let exp = expected.entry(key).or_default();
        let dec = declared.entry(key).or_default();
        for &o in pat.offsets() {
            exp.insert(resolve(bc, domain, ci + o.di, cj + o.dj, ck + o.dk));
            dec.push(o);
        }
    }
    let mut recorded: BTreeMap<trace::ArrayKey, BTreeSet<(i64, i64, i64)>> = BTreeMap::new();
    for &(key, i, j, k) in &log.reads {
        recorded.entry(key).or_default().insert((i, j, k));
    }
    for (&key, cells) in &recorded {
        match expected.get(&key) {
            None => {
                // Reads of an array that is not an input at all: its own
                // output, or an unrelated field.
                let what = if out_keys.contains(&key) {
                    "kernel reads its own output"
                } else {
                    "kernel reads a field not declared as an input"
                };
                for &(i, j, k) in cells {
                    found.insert(Diagnostic {
                        code: DiagnosticCode::UndeclaredRead,
                        site: st.name.clone(),
                        field: name(key),
                        detail: format!("{what} at offset ({}, {}, {})", i - ci, j - cj, k - ck),
                    });
                }
            }
            Some(exp) => {
                for &(i, j, k) in cells.difference(exp) {
                    found.insert(Diagnostic {
                        code: DiagnosticCode::UndeclaredRead,
                        site: st.name.clone(),
                        field: name(key),
                        detail: format!(
                            "read at offset ({}, {}, {}) not covered by the declared pattern",
                            i - ci,
                            j - cj,
                            k - ck
                        ),
                    });
                }
            }
        }
    }
    for (&key, exp) in &expected {
        let got = recorded.get(&key);
        for &miss in exp.iter().filter(|m| got.is_none_or(|g| !g.contains(m))) {
            // Attribute the unread cell back to every declared offset
            // resolving there. Sound anywhere: a genuinely read offset
            // resolves into the recorded set by construction.
            for o in &declared[&key] {
                if resolve(bc, domain, ci + o.di, cj + o.dj, ck + o.dk) == miss {
                    found.insert(Diagnostic {
                        code: DiagnosticCode::OverdeclaredOffset,
                        site: st.name.clone(),
                        field: name(key),
                        detail: format!(
                            "declared offset ({}, {}, {}) is never read",
                            o.di, o.dj, o.dk
                        ),
                    });
                }
            }
        }
    }
    // Writes: exactly the requested cell, exactly the declared outputs.
    let mut written: BTreeMap<trace::ArrayKey, BTreeSet<(i64, i64, i64)>> = BTreeMap::new();
    for &(key, i, j, k) in &log.writes {
        written.entry(key).or_default().insert((i, j, k));
    }
    for (&key, cells) in &written {
        if !out_keys.contains(&key) {
            found.insert(Diagnostic {
                code: DiagnosticCode::UndeclaredWrite,
                site: st.name.clone(),
                field: name(key),
                detail: "kernel writes a field not declared as an output".into(),
            });
            continue;
        }
        for &(i, j, k) in cells {
            if (i, j, k) != c {
                found.insert(Diagnostic {
                    code: DiagnosticCode::OutOfRegionWrite,
                    site: st.name.clone(),
                    field: name(key),
                    detail: format!(
                        "write at offset ({}, {}, {}) outside the requested region",
                        i - ci,
                        j - cj,
                        k - ck
                    ),
                });
            }
        }
    }
    for &key in out_keys {
        if !written.get(&key).is_some_and(|w| w.contains(&c)) {
            found.insert(Diagnostic {
                code: DiagnosticCode::MissingWrite,
                site: st.name.clone(),
                field: name(key),
                detail: "requested cell was not written".into(),
            });
        }
    }
}

/// Clones `graph` with one offset removed from the pattern of input
/// `slot` of stage `stage` — the seeded mutant the regression tests and
/// `stencil-lint --mutant drop-offset` feed back into [`check_graph`]
/// to prove the linter catches under-declaration.
///
/// # Panics
///
/// Panics if the offset is not in the pattern, if removing it would
/// empty the pattern, or if the mutated graph fails validation.
pub fn with_offset_removed(
    graph: &StageGraph,
    stage: usize,
    slot: usize,
    o: Offset3,
) -> StageGraph {
    let mut stages = graph.stages().to_vec();
    let (_, pat) = &mut stages[stage].inputs[slot];
    assert!(pat.contains(o), "offset to remove must be declared");
    *pat = StencilPattern::from_offsets(
        pat.offsets()
            .iter()
            .copied()
            .filter(|&p| p != o)
            .map(|p| (p.di, p.dj, p.dk)),
    );
    StageGraph::build(graph.fields().clone(), stages).expect("mutant graph still validates")
}
