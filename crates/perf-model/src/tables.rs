//! Paper-style table rendering.
//!
//! Every bench binary prints its results as an aligned text table whose
//! rows/columns mirror the corresponding table of the paper, plus a CSV
//! dump for plotting.

use std::fmt::Write as _;

/// A simple numeric table: one label per row, one label per column.
#[derive(Clone, Debug, PartialEq)]
pub struct Table {
    title: String,
    col_labels: Vec<String>,
    rows: Vec<(String, Vec<f64>)>,
    precision: usize,
}

impl Table {
    /// Creates an empty table titled `title` with the given columns.
    pub fn new(title: impl Into<String>, col_labels: Vec<String>) -> Self {
        Table {
            title: title.into(),
            col_labels,
            rows: Vec::new(),
            precision: 2,
        }
    }

    /// Column labels `1..=n` (the paper's "# CPUs" header).
    pub fn numbered_columns(title: impl Into<String>, n: usize) -> Self {
        Self::new(title, (1..=n).map(|c| c.to_string()).collect())
    }

    /// Sets the number of fraction digits (default 2).
    pub fn precision(mut self, p: usize) -> Self {
        self.precision = p;
        self
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the value count does not match the column count.
    pub fn push_row(&mut self, label: impl Into<String>, values: Vec<f64>) {
        assert_eq!(
            values.len(),
            self.col_labels.len(),
            "row width must match column labels"
        );
        self.rows.push((label.into(), values));
    }

    /// The table's title.
    pub fn title(&self) -> &str {
        &self.title
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Cell value by row/column index.
    pub fn value(&self, row: usize, col: usize) -> f64 {
        self.rows[row].1[col]
    }

    /// Renders an aligned text table.
    pub fn render(&self) -> String {
        let mut label_w = 0;
        for (l, _) in &self.rows {
            label_w = label_w.max(l.len());
        }
        let mut col_w = vec![0usize; self.col_labels.len()];
        for (c, l) in self.col_labels.iter().enumerate() {
            col_w[c] = l.len();
        }
        let fmt_val = |v: f64, p: usize| -> String { format!("{v:.p$}") };
        for (_, vals) in &self.rows {
            for (c, v) in vals.iter().enumerate() {
                col_w[c] = col_w[c].max(fmt_val(*v, self.precision).len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "## {}", self.title);
        let _ = write!(out, "{:label_w$}", "");
        for (c, l) in self.col_labels.iter().enumerate() {
            let _ = write!(out, "  {:>w$}", l, w = col_w[c]);
        }
        let _ = writeln!(out);
        for (label, vals) in &self.rows {
            let _ = write!(out, "{label:label_w$}");
            for (c, v) in vals.iter().enumerate() {
                let _ = write!(out, "  {:>w$}", fmt_val(*v, self.precision), w = col_w[c]);
            }
            let _ = writeln!(out);
        }
        out
    }

    /// Renders the table as a self-contained JSON object
    /// (`{"title": ..., "columns": [...], "rows": {label: [values]}}`),
    /// for plotting pipelines. Labels are escaped per RFC 8259.
    pub fn to_json(&self) -> String {
        fn esc(s: &str) -> String {
            let mut out = String::with_capacity(s.len() + 2);
            out.push('"');
            for c in s.chars() {
                match c {
                    '"' => out.push_str("\\\""),
                    '\\' => out.push_str("\\\\"),
                    '\n' => out.push_str("\\n"),
                    '\t' => out.push_str("\\t"),
                    c if (c as u32) < 0x20 => {
                        out.push_str(&format!("\\u{:04x}", c as u32));
                    }
                    c => out.push(c),
                }
            }
            out.push('"');
            out
        }
        fn num(v: f64) -> String {
            if v.is_finite() {
                format!("{v}")
            } else {
                "null".into() // NaN/inf are not JSON numbers
            }
        }
        let mut out = String::from("{");
        let _ = write!(out, "\"title\": {}, \"columns\": [", esc(&self.title));
        for (n, c) in self.col_labels.iter().enumerate() {
            if n > 0 {
                out.push_str(", ");
            }
            out.push_str(&esc(c));
        }
        out.push_str("], \"rows\": {");
        for (n, (label, vals)) in self.rows.iter().enumerate() {
            if n > 0 {
                out.push_str(", ");
            }
            let _ = write!(out, "{}: [", esc(label));
            for (m, v) in vals.iter().enumerate() {
                if m > 0 {
                    out.push_str(", ");
                }
                out.push_str(&num(*v));
            }
            out.push(']');
        }
        out.push_str("}}");
        out
    }

    /// Renders a CSV dump (`label,<col>,...`).
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        let _ = write!(out, "label");
        for l in &self.col_labels {
            let _ = write!(out, ",{l}");
        }
        let _ = writeln!(out);
        for (label, vals) in &self.rows {
            let _ = write!(out, "{label}");
            for v in vals {
                let _ = write!(out, ",{v}");
            }
            let _ = writeln!(out);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Table {
        let mut t = Table::numbered_columns("Execution times [s]", 3).precision(1);
        t.push_row("Original", vec![30.4, 15.4, 10.5]);
        t.push_row("(3+1)D", vec![9.0, 8.2, 7.4]);
        t
    }

    #[test]
    fn render_is_aligned_and_complete() {
        let t = sample();
        let s = t.render();
        assert!(s.contains("## Execution times [s]"));
        assert!(s.contains("Original"));
        assert!(s.contains("30.4"));
        assert!(s.contains("7.4"));
        // Every data line has the same number of columns.
        let lines: Vec<&str> = s.lines().skip(1).collect();
        let cols: Vec<usize> = lines.iter().map(|l| l.split_whitespace().count()).collect();
        assert_eq!(cols[1], cols[2]);
    }

    #[test]
    fn csv_round_trip_values() {
        let t = sample();
        let csv = t.to_csv();
        assert!(csv.starts_with("label,1,2,3"));
        assert!(csv.contains("Original,30.4,15.4,10.5"));
    }

    #[test]
    fn json_output_is_well_formed() {
        let mut t = sample();
        t.push_row("na\"n", vec![f64::NAN, 1.0, 2.0]);
        let j = t.to_json();
        assert!(j.starts_with('{') && j.ends_with('}'));
        assert!(j.contains("\"title\": \"Execution times [s]\""));
        assert!(j.contains("\"Original\": [30.4, 15.4, 10.5]"));
        assert!(j.contains("\"na\\\"n\": [null, 1, 2]"));
        // Balanced braces/brackets (cheap structural check).
        assert_eq!(j.matches('{').count(), j.matches('}').count());
        assert_eq!(j.matches('[').count(), j.matches(']').count());
    }

    #[test]
    fn value_accessor() {
        let t = sample();
        assert_eq!(t.value(1, 0), 9.0);
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    #[should_panic]
    fn mismatched_row_width_panics() {
        let mut t = Table::numbered_columns("t", 2);
        t.push_row("x", vec![1.0]);
    }
}
