//! Main-memory traffic accounting (the paper's §3.2 likwid-perfctr
//! measurements, derived analytically here).

use stencil_engine::{
    fused_traffic_bytes, original_traffic_bytes, BlockPlanner, FieldRole, PlanBlocksError, Region3,
    StageGraph, BYTES_PER_CELL,
};

/// Traffic of one strategy over a whole run, bytes.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TrafficReport {
    /// Bytes read from and written to main memory per time step.
    pub bytes_per_step: f64,
    /// Bytes over the whole run.
    pub total_bytes: f64,
}

impl TrafficReport {
    fn from_step(bytes_per_step: f64, steps: usize) -> Self {
        TrafficReport {
            bytes_per_step,
            total_bytes: bytes_per_step * steps as f64,
        }
    }

    /// Total traffic in GB (decimal, as likwid reports).
    pub fn total_gb(&self) -> f64 {
        self.total_bytes / 1e9
    }
}

/// Traffic of the original version: every stage streams every input
/// from and every output to DRAM (stores count twice for
/// write-allocate).
pub fn original_traffic(graph: &StageGraph, domain: Region3, steps: usize) -> TrafficReport {
    TrafficReport::from_step(original_traffic_bytes(graph, domain) as f64, steps)
}

/// Idealized (3+1)D traffic: externals in, output out, nothing else.
pub fn fused_traffic_ideal(graph: &StageGraph, domain: Region3, steps: usize) -> TrafficReport {
    TrafficReport::from_step(fused_traffic_bytes(graph, domain) as f64, steps)
}

/// Realistic (3+1)D traffic for a given cache budget: accounts for the
/// halo re-reads of overlapped tiling (each block re-reads the external
/// slabs its enlarged stage regions touch).
///
/// # Errors
///
/// Returns [`PlanBlocksError`] when no block fits the cache budget.
pub fn fused_traffic_blocked(
    graph: &StageGraph,
    domain: Region3,
    steps: usize,
    cache_bytes: usize,
) -> Result<TrafficReport, PlanBlocksError> {
    let blocking = BlockPlanner::new(cache_bytes).plan(graph, domain, domain)?;
    let mut bytes = 0usize;
    for block in &blocking.blocks {
        // Each external field is loaded once per block over the hull of
        // the regions of the stages that read it.
        for (f, _, role) in graph.fields().iter() {
            match role {
                FieldRole::External => {
                    let mut hull = Region3::empty();
                    for st in graph.stages() {
                        if st.reads(f) {
                            hull = hull.hull(block.stage_regions[st.id.index()]);
                        }
                    }
                    bytes += hull.cells() * BYTES_PER_CELL;
                }
                FieldRole::Output => {
                    // Write-allocate: the output slab costs a read and a
                    // write.
                    bytes += 2 * block.output_region.cells() * BYTES_PER_CELL;
                }
                FieldRole::Intermediate => {}
            }
        }
    }
    Ok(TrafficReport::from_step(bytes as f64, steps))
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpdata::mpdata_graph;

    #[test]
    fn traffic_ordering_original_blocked_ideal() {
        let (g, _) = mpdata_graph();
        let d = Region3::of_extent(256, 256, 64);
        let orig = original_traffic(&g, d, 50);
        let ideal = fused_traffic_ideal(&g, d, 50);
        let blocked = fused_traffic_blocked(&g, d, 50, 25 << 20).unwrap();
        assert!(ideal.total_bytes <= blocked.total_bytes);
        assert!(blocked.total_bytes < orig.total_bytes);
        // §3.2's measured ratio on this very configuration is
        // 133 GB / 30 GB ≈ 4.4×; our analytic model must show a
        // reduction of at least that order.
        let ratio = orig.total_bytes / blocked.total_bytes;
        assert!(ratio > 4.0, "reduction ratio {ratio}");
    }

    #[test]
    fn paper_order_of_magnitude() {
        let (g, _) = mpdata_graph();
        let d = Region3::of_extent(256, 256, 64);
        let orig = original_traffic(&g, d, 50);
        // Paper: 133 GB; our stage graph counts 94 sweeps/step ⇒ 158 GB.
        assert!(
            (100.0..220.0).contains(&orig.total_gb()),
            "{}",
            orig.total_gb()
        );
        let blocked = fused_traffic_blocked(&g, d, 50, 25 << 20).unwrap();
        // Paper: 30 GB measured; the analytic floor is lower because
        // the real code also spills some intermediates.
        assert!(
            (8.0..40.0).contains(&blocked.total_gb()),
            "{}",
            blocked.total_gb()
        );
    }

    #[test]
    fn smaller_cache_means_more_traffic() {
        let (g, _) = mpdata_graph();
        let d = Region3::of_extent(128, 64, 32);
        let big = fused_traffic_blocked(&g, d, 1, 16 << 20).unwrap();
        let small = fused_traffic_blocked(&g, d, 1, 1 << 20).unwrap();
        assert!(small.total_bytes > big.total_bytes);
    }
}
