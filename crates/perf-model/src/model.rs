//! Closed-form performance model of the three MPDATA strategies.
//!
//! The paper's §6 names "performance models ... for modeling and
//! management of the correlation between computation and communication
//! costs" as the path to the planned MPI extension. This module provides
//! the first-order such model: a handful of algebraic expressions over
//! the machine parameters that predict per-step times without running
//! the discrete-event engine — and a test battery (below and in
//! `tests/`) that validates them against the engine across machine
//! sizes.
//!
//! The model deliberately ignores second-order effects the engine
//! captures (queueing order, latency accumulation, load imbalance), so
//! agreement within a few tens of percent is the design goal, not
//! equality.

use islands_core::{extra_elements, Partition, Variant, Workload};
use mpdata::mpdata_graph;
use numa_sim::{Machine, SimConfig};
use stencil_engine::{original_traffic_bytes, BlockPlanner, BYTES_PER_CELL};

/// Closed-form per-step time predictions, seconds.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ModelPrediction {
    /// Original version, parallel first touch.
    pub original: f64,
    /// Original version, serial first touch (everything on socket 0).
    pub original_serial: f64,
    /// Pure (3+1)D decomposition.
    pub fused: f64,
    /// Islands-of-cores, variant A.
    pub islands: f64,
}

/// Evaluates the closed-form model for `machine` and `w`.
///
/// # Panics
///
/// Panics when the machine has no compute node or the block planner
/// cannot fit a block (the same conditions under which the simulator
/// planners panic for this workload).
pub fn predict(machine: &Machine, w: &Workload, cfg: &SimConfig) -> ModelPrediction {
    let (graph, _) = mpdata_graph();
    let nodes = machine.compute_nodes();
    let p = nodes.len() as f64;
    let cores = machine.core_count() as f64;
    let node0 = machine.nodes()[nodes[0].index()].clone();
    let rate = node0.core.sustained_flops();
    let cells = w.domain.cells() as f64;
    let flops_step = mpdata::flops_per_cell() * cells;
    let t_compute = flops_step / (cores * rate);

    // --- Original: max(compute, memory) per step. -----------------------
    let traffic = original_traffic_bytes(&graph, w.domain) as f64;
    let t_mem_parallel = traffic / (p * node0.dram_bandwidth);
    let barrier = |span_hops: usize| cfg.barrier_base + cfg.barrier_per_hop * span_hops as f64;
    let max_hops = {
        let mut h = 0;
        for &a in &nodes {
            h = h.max(machine.hops(nodes[0], a));
        }
        h
    };
    let stages = graph.stage_count() as f64;
    let original = t_compute.max(t_mem_parallel) + stages * barrier(max_hops);

    // Serial first touch: everything streams from socket 0, bounded by
    // its DRAM for the local share and its uplink for the remote share.
    let remote_share = (cores - node0.cores as f64) / cores;
    let uplink = if nodes.len() > 1 {
        machine
            .route_bandwidth(nodes[1], nodes[0])
            .min(machine.route_bandwidth(*nodes.last().unwrap(), nodes[0]))
    } else {
        f64::INFINITY
    };
    let t_mem_serial = traffic * (1.0 - remote_share) / node0.dram_bandwidth
        + traffic * remote_share / uplink.min(node0.dram_bandwidth);
    let original_serial = t_compute.max(t_mem_serial) + stages * barrier(max_hops);

    // --- (3+1)D: compute + per-block remote input pulls + barriers. -----
    let blocking = BlockPlanner::new(w.cache_bytes)
        .min_depth(4)
        .plan_wavefront(&graph, w.domain, w.domain)
        .expect("paper workload plans");
    let n_blocks = blocking.len() as f64;
    // Each block's external slabs live on one home socket, and the
    // output slab is written back there too (2× for write-allocate);
    // the remote share of all of it crosses that socket's uplink.
    let cross_bytes = (graph.external_fields().len() as f64
        + 2.0 * graph.output_fields().len() as f64)
        * cells
        * BYTES_PER_CELL as f64;
    let t_cross = if nodes.len() > 1 {
        cross_bytes * remote_share / uplink
    } else {
        0.0
    };
    let fused = t_compute + t_cross + n_blocks * stages * barrier(max_hops);

    // --- Islands: compute × (1 + extra) + team barriers + step sync. ----
    let extra = extra_elements(
        &graph,
        &Partition::one_d(w.domain, Variant::A, nodes.len()).expect("nonzero islands"),
    )
    .percent()
        / 100.0;
    let island_blocks = (n_blocks / p).ceil();
    let islands =
        t_compute * (1.0 + extra) + island_blocks * stages * barrier(0) + barrier(max_hops);

    ModelPrediction {
        original,
        original_serial,
        fused,
        islands,
    }
}

/// Relative error of a prediction against a measurement.
pub fn relative_error(predicted: f64, measured: f64) -> f64 {
    (predicted - measured).abs() / measured
}

/// A strategy recommendation for one machine and workload.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Recommendation {
    /// The recommended execution strategy.
    pub strategy: Strategy,
    /// The partition variant for islands (A unless the grid is taller
    /// than long).
    pub variant: Variant,
    /// Predicted seconds per time step.
    pub step_seconds: f64,
    /// Predicted seconds for the whole workload.
    pub total_seconds: f64,
}

/// The execution strategies the model chooses between.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Strategy {
    /// Per-stage parallel sweeps with parallel first touch.
    Original,
    /// Pure (3+1)D decomposition.
    Fused,
    /// Islands-of-cores.
    Islands,
}

/// Recommends the fastest strategy for `machine` and `w` using the
/// closed-form model (validated against the discrete-event engine to
/// ≤ 23 % — see experiment E10).
///
/// The variant follows Table 2's rule: cut the dimension with the
/// smaller cut face, i.e. variant A when the grid is at least as long
/// in `i` as in `j`.
pub fn recommend(machine: &Machine, w: &Workload, cfg: &SimConfig) -> Recommendation {
    let m = predict(machine, w, cfg);
    let variant = if w.domain.i.len() >= w.domain.j.len() {
        Variant::A
    } else {
        Variant::B
    };
    let (strategy, step_seconds) = [
        (Strategy::Islands, m.islands),
        (Strategy::Fused, m.fused),
        (Strategy::Original, m.original),
    ]
    .into_iter()
    .min_by(|a, b| a.1.total_cmp(&b.1))
    .expect("three candidates");
    Recommendation {
        strategy,
        variant,
        step_seconds,
        total_seconds: step_seconds * w.steps as f64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use islands_core::{estimate, plan_fused, plan_islands, plan_original, InitPolicy};
    use numa_sim::UvParams;

    /// The model must reproduce the *orderings* the paper reports, and
    /// track the engine within 40 % for each strategy.
    #[test]
    fn model_tracks_engine() {
        let w = Workload::paper();
        let cfg = SimConfig::default();
        for sockets in [1usize, 2, 4, 8, 14] {
            let machine = UvParams::uv2000(sockets).build();
            let m = predict(&machine, &w, &cfg);
            let steps = w.steps as f64;

            let sim_orig = estimate(
                &machine,
                &plan_original(&machine, &w, InitPolicy::ParallelFirstTouch),
                &w,
                &cfg,
            )
            .unwrap()
            .total_seconds
                / steps;
            let sim_fused = estimate(
                &machine,
                &plan_fused(&machine, &w, InitPolicy::ParallelFirstTouch).unwrap(),
                &w,
                &cfg,
            )
            .unwrap()
            .total_seconds
                / steps;
            let sim_isl = estimate(
                &machine,
                &plan_islands(&machine, &w, Variant::A).unwrap(),
                &w,
                &cfg,
            )
            .unwrap()
            .total_seconds
                / steps;

            assert!(
                relative_error(m.original, sim_orig) < 0.4,
                "P={sockets} original: model {} vs engine {sim_orig}",
                m.original
            );
            assert!(
                relative_error(m.fused, sim_fused) < 0.4,
                "P={sockets} fused: model {} vs engine {sim_fused}",
                m.fused
            );
            assert!(
                relative_error(m.islands, sim_isl) < 0.4,
                "P={sockets} islands: model {} vs engine {sim_isl}",
                m.islands
            );
            // Orderings: islands wins from 2 sockets on; the
            // original-vs-fused crossover needs contention terms the
            // first-order model omits, so only require it where the gap
            // is decisive (P ≥ 8).
            if sockets >= 2 {
                assert!(m.islands < m.fused, "P={sockets}: islands vs fused");
                assert!(m.islands < m.original, "P={sockets}: islands vs original");
            }
            if sockets >= 8 {
                assert!(m.original < m.fused, "P={sockets}: original vs fused");
                assert!(
                    m.fused < m.original_serial,
                    "P={sockets}: fused vs serial-init"
                );
            }
        }
    }

    #[test]
    fn relative_error_basics() {
        assert_eq!(relative_error(1.0, 1.0), 0.0);
        assert!((relative_error(1.2, 1.0) - 0.2).abs() < 1e-12);
    }

    #[test]
    fn recommendation_matches_paper_conclusions() {
        let w = Workload::paper();
        let cfg = SimConfig::default();
        // Multi-socket: islands, variant A (grid longer in i).
        let rec = recommend(&UvParams::uv2000(8).build(), &w, &cfg);
        assert_eq!(rec.strategy, Strategy::Islands);
        assert_eq!(rec.variant, Variant::A);
        assert!(rec.total_seconds > 0.0);
        assert!((rec.total_seconds - rec.step_seconds * 50.0).abs() < 1e-9);
        // Single socket: islands degenerates to (3+1)D; either of the
        // cache-blocked strategies must win over the original.
        let rec1 = recommend(&UvParams::uv2000(1).build(), &w, &cfg);
        assert_ne!(rec1.strategy, Strategy::Original);
        // A grid taller in j flips the variant.
        let tall = Workload::new(stencil_engine::Region3::of_extent(128, 512, 16), 10);
        let rec2 = recommend(&UvParams::uv2000(4).build(), &tall, &cfg);
        assert_eq!(rec2.variant, Variant::B);
    }
}
