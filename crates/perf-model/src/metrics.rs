//! Performance metrics in the paper's units.

use stencil_engine::Region3;

/// Flops of one MPDATA run over `domain` for `steps` steps, without
/// redundancy (the denominator of sustained-performance numbers; the
/// paper likewise credits only useful flops).
pub fn useful_flops(domain: Region3, steps: usize) -> f64 {
    mpdata::flops_per_cell() * domain.cells() as f64 * steps as f64
}

/// Sustained performance in Gflop/s (Table 4 row 2).
pub fn sustained_gflops(domain: Region3, steps: usize, seconds: f64) -> f64 {
    useful_flops(domain, steps) / seconds / 1e9
}

/// Utilization rate against a theoretical peak in Gflop/s (Table 4
/// row 3).
pub fn utilization_percent(sustained_gflops: f64, peak_gflops: f64) -> f64 {
    100.0 * sustained_gflops / peak_gflops
}

/// Parallel efficiency as percentage of linear scaling from the
/// single-processor time (Table 4 row 4): `t1 / (p · tp) · 100`.
pub fn parallel_efficiency_percent(t1: f64, tp: f64, p: usize) -> f64 {
    100.0 * t1 / (p as f64 * tp)
}

/// Partial speedup `S_pr`: the islands-of-cores time against the pure
/// (3+1)D decomposition at the same processor count (Table 3).
pub fn partial_speedup(fused_seconds: f64, islands_seconds: f64) -> f64 {
    fused_seconds / islands_seconds
}

/// Overall speedup `S_ov`: islands-of-cores against the original
/// version at the same processor count (Table 3).
pub fn overall_speedup(original_seconds: f64, islands_seconds: f64) -> f64 {
    original_seconds / islands_seconds
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn useful_flops_match_paper_scale() {
        // 1024×512×64 × 50 steps × ≈235 flop/cell ≈ 0.39 Tflop — the
        // paper's 9.0 s single-socket run at 42.7 Gflop/s implies 0.38.
        let f = useful_flops(Region3::of_extent(1024, 512, 64), 50);
        assert!((3.4e11..4.5e11).contains(&f), "flops = {f:e}");
    }

    #[test]
    fn gflops_and_utilization() {
        let d = Region3::of_extent(1024, 512, 64);
        let g = sustained_gflops(d, 50, 9.0);
        assert!((38.0..50.0).contains(&g), "gflops = {g}");
        let u = utilization_percent(g, 105.6);
        assert!((36.0..48.0).contains(&u));
    }

    #[test]
    fn speedups_and_efficiency() {
        assert!((partial_speedup(10.4, 1.01) - 10.297).abs() < 1e-3);
        assert!((overall_speedup(2.81, 1.01) - 2.782).abs() < 1e-3);
        assert!((parallel_efficiency_percent(9.0, 9.0, 1) - 100.0).abs() < 1e-12);
        assert!((parallel_efficiency_percent(9.0, 1.0, 14) - 64.28).abs() < 0.01);
    }
}
