//! Minimal ASCII line plots, so the figure reproductions render as
//! figures in a terminal and in the captured experiment reports.

use std::fmt::Write as _;

/// An ASCII scatter/line plot of one or more series over a shared
/// x-axis.
///
/// # Examples
///
/// ```
/// use perf_model::AsciiPlot;
/// let mut p = AsciiPlot::new("speedup vs P", 40, 12);
/// p.series('a', &[1.0, 2.0, 3.0], &[1.0, 1.9, 2.7]);
/// let s = p.render();
/// assert!(s.contains("speedup vs P"));
/// assert!(s.contains('a'));
/// ```
#[derive(Clone, Debug)]
pub struct AsciiPlot {
    title: String,
    width: usize,
    height: usize,
    series: Vec<(char, Vec<(f64, f64)>)>,
    log_y: bool,
}

impl AsciiPlot {
    /// Creates an empty plot with the given canvas size (columns × rows
    /// of the data area).
    ///
    /// # Panics
    ///
    /// Panics if `width < 2` or `height < 2`.
    pub fn new(title: impl Into<String>, width: usize, height: usize) -> Self {
        assert!(width >= 2 && height >= 2, "canvas too small");
        AsciiPlot {
            title: title.into(),
            width,
            height,
            series: Vec::new(),
            log_y: false,
        }
    }

    /// Plots y on a log scale (for execution-time curves spanning
    /// decades, like Fig. 2a).
    pub fn log_y(mut self) -> Self {
        self.log_y = true;
        self
    }

    /// Adds a series drawn with `marker`. `xs` and `ys` must have equal
    /// lengths; non-finite points are skipped.
    ///
    /// # Panics
    ///
    /// Panics if the lengths differ.
    pub fn series(&mut self, marker: char, xs: &[f64], ys: &[f64]) -> &mut Self {
        assert_eq!(xs.len(), ys.len(), "series length mismatch");
        let pts = xs
            .iter()
            .zip(ys)
            .filter(|(x, y)| x.is_finite() && y.is_finite())
            .map(|(&x, &y)| (x, y))
            .collect();
        self.series.push((marker, pts));
        self
    }

    /// Renders the plot.
    pub fn render(&self) -> String {
        let all: Vec<(f64, f64)> = self.series.iter().flat_map(|(_, p)| p.clone()).collect();
        let mut out = String::new();
        let _ = writeln!(out, "## {}", self.title);
        if all.is_empty() {
            let _ = writeln!(out, "(no data)");
            return out;
        }
        let ty = |y: f64| if self.log_y { y.max(1e-300).log10() } else { y };
        let (mut x0, mut x1) = (f64::INFINITY, f64::NEG_INFINITY);
        let (mut y0, mut y1) = (f64::INFINITY, f64::NEG_INFINITY);
        for &(x, y) in &all {
            x0 = x0.min(x);
            x1 = x1.max(x);
            y0 = y0.min(ty(y));
            y1 = y1.max(ty(y));
        }
        if (x1 - x0).abs() < 1e-300 {
            x1 = x0 + 1.0;
        }
        if (y1 - y0).abs() < 1e-300 {
            y1 = y0 + 1.0;
        }
        let mut grid = vec![vec![' '; self.width]; self.height];
        for (marker, pts) in &self.series {
            for &(x, y) in pts {
                let cx = ((x - x0) / (x1 - x0) * (self.width - 1) as f64).round() as usize;
                let cy = ((ty(y) - y0) / (y1 - y0) * (self.height - 1) as f64).round() as usize;
                let row = self.height - 1 - cy;
                grid[row][cx.min(self.width - 1)] = *marker;
            }
        }
        let top = if self.log_y {
            format!("{:.3}", 10f64.powf(y1))
        } else {
            format!("{y1:.3}")
        };
        let bottom = if self.log_y {
            format!("{:.3}", 10f64.powf(y0))
        } else {
            format!("{y0:.3}")
        };
        let label_w = top.len().max(bottom.len());
        for (n, row) in grid.iter().enumerate() {
            let label = if n == 0 {
                top.clone()
            } else if n + 1 == self.height {
                bottom.clone()
            } else {
                String::new()
            };
            let _ = writeln!(out, "{label:>label_w$} |{}", row.iter().collect::<String>());
        }
        let _ = writeln!(out, "{:label_w$} +{}", "", "-".repeat(self.width));
        let _ = writeln!(
            out,
            "{:label_w$}  {x0:<8.3}{:>w$.3}",
            "",
            x1,
            w = self.width - 8
        );
        let legend: Vec<String> = self.series.iter().map(|(m, _)| format!("{m}")).collect();
        let _ = writeln!(out, "{:label_w$}  series: {}", "", legend.join(", "));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_markers_and_bounds() {
        let mut p = AsciiPlot::new("t", 30, 10);
        p.series('o', &[1.0, 2.0, 3.0], &[1.0, 4.0, 9.0]);
        p.series('x', &[1.0, 2.0, 3.0], &[9.0, 4.0, 1.0]);
        let s = p.render();
        assert!(s.contains("## t"));
        assert!(s.contains('o') && s.contains('x'));
        assert!(s.contains("9.000"));
        assert!(s.contains("1.000"));
        // Data rows all equal width + margin.
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 10 + 4); // title + rows + axis + xlabels + legend
    }

    #[test]
    fn log_scale_spreads_decades() {
        let mut p = AsciiPlot::new("log", 20, 9).log_y();
        p.series('*', &[1.0, 2.0, 3.0], &[0.01, 1.0, 100.0]);
        let s = p.render();
        // The middle decade value must land near the vertical middle:
        // find the row of '*' for x = middle column.
        let rows: Vec<usize> = s
            .lines()
            .enumerate()
            .filter(|(_, l)| l.contains('*') && l.contains('|'))
            .map(|(n, _)| n)
            .collect();
        assert_eq!(rows.len(), 3);
        let mid = rows[1] as f64;
        assert!((mid - (rows[0] + rows[2]) as f64 / 2.0).abs() <= 1.0);
    }

    #[test]
    fn empty_and_degenerate_inputs() {
        let p = AsciiPlot::new("empty", 10, 5);
        assert!(p.render().contains("(no data)"));
        let mut p = AsciiPlot::new("flat", 10, 5);
        p.series('=', &[1.0, 2.0], &[3.0, 3.0]);
        assert!(p.render().contains('='));
        let mut p = AsciiPlot::new("nan", 10, 5);
        p.series('n', &[1.0, f64::NAN], &[1.0, 2.0]);
        assert!(p.render().contains('n'));
    }

    #[test]
    #[should_panic]
    fn mismatched_series_panics() {
        let mut p = AsciiPlot::new("bad", 10, 5);
        p.series('b', &[1.0], &[1.0, 2.0]);
    }
}
