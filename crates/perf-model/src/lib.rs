//! # perf-model
//!
//! Flop and main-memory-traffic accounting plus the performance metrics
//! and table rendering used to regenerate every table and figure of the
//! islands-of-cores paper (sustained Gflop/s, utilization of theoretical
//! peak, parallel efficiency, the S_pr/S_ov speedups, and the §3.2
//! traffic comparison).
//!
//! ## Example
//!
//! ```
//! use perf_model::{sustained_gflops, utilization_percent, Table};
//! use stencil_engine::Region3;
//!
//! let domain = Region3::of_extent(1024, 512, 64);
//! let gf = sustained_gflops(domain, 50, 9.0);
//! let util = utilization_percent(gf, 105.6);
//! let mut t = Table::numbered_columns("Sustained performance", 1);
//! t.push_row("Gflop/s", vec![gf]);
//! assert!(util > 30.0);
//! assert!(t.render().contains("Gflop/s"));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cache_study;
mod metrics;
mod model;
mod plot;
mod tables;
mod traffic;

pub use cache_study::{
    blocked_schedule_stats, compulsory_miss_bytes, per_stage_schedule_stats, FieldLayout,
};
pub use metrics::{
    overall_speedup, parallel_efficiency_percent, partial_speedup, sustained_gflops, useful_flops,
    utilization_percent,
};
pub use model::{predict, recommend, relative_error, ModelPrediction, Recommendation, Strategy};
pub use plot::AsciiPlot;
pub use tables::Table;
pub use traffic::{fused_traffic_blocked, fused_traffic_ideal, original_traffic, TrafficReport};
