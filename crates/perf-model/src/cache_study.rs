//! Trace-driven cache study: checks the (3+1)D premise with a real
//! cache model instead of assuming it.
//!
//! The §3.2 claim — fusing the 17 stages into cache-sized blocks removes
//! the intermediate arrays' main-memory round trips — rests on the
//! intermediates actually *surviving* in cache across stages. Here we
//! generate the exact byte-address stream of a schedule (every read of
//! every stencil offset, every write) and feed it through the
//! set-associative LRU model of `numa-sim`, so the miss traffic is
//! measured, not modelled.

use numa_sim::{CacheConfig, CacheSim, CacheStats};
use stencil_engine::{Blocking, Region3, StageGraph, BYTES_PER_CELL};

/// Byte addresses for the fields of a graph over one domain: fields are
/// laid out back to back, each padded to a line boundary plus a 4 KiB
/// stagger to avoid pathological set aliasing between fields.
#[derive(Clone, Debug)]
pub struct FieldLayout {
    domain: Region3,
    nj: u64,
    nk: u64,
    bases: Vec<u64>,
}

impl FieldLayout {
    /// Lays out every field of `graph` over `domain`.
    pub fn new(graph: &StageGraph, domain: Region3) -> Self {
        let field_bytes = (domain.cells() * BYTES_PER_CELL) as u64;
        let stride = field_bytes.div_ceil(4096) * 4096 + 4096;
        let bases = (0..graph.fields().len() as u64)
            .map(|f| f * stride)
            .collect();
        FieldLayout {
            domain,
            nj: domain.j.len() as u64,
            nk: domain.k.len() as u64,
            bases,
        }
    }

    /// Address of cell `(i, j, k)` of `field` (domain-clamped like the
    /// kernels' open-boundary reads).
    #[inline]
    fn addr(&self, field: usize, i: i64, j: i64, k: i64) -> u64 {
        let d = self.domain;
        let i = (i.clamp(d.i.lo, d.i.hi - 1) - d.i.lo) as u64;
        let j = (j.clamp(d.j.lo, d.j.hi - 1) - d.j.lo) as u64;
        let k = (k.clamp(d.k.lo, d.k.hi - 1) - d.k.lo) as u64;
        self.bases[field] + ((i * self.nj + j) * self.nk + k) * BYTES_PER_CELL as u64
    }
}

/// Runs the address stream of one stage applied to `region` through the
/// cache.
fn sweep_stage(
    cache: &mut CacheSim,
    layout: &FieldLayout,
    graph: &StageGraph,
    stage: usize,
    region: Region3,
) {
    let st = &graph.stages()[stage];
    for i in region.i.lo..region.i.hi {
        for j in region.j.lo..region.j.hi {
            for k in region.k.lo..region.k.hi {
                for (f, pattern) in &st.inputs {
                    for o in pattern.offsets() {
                        cache.access(layout.addr(f.index(), i + o.di, j + o.dj, k + o.dk));
                    }
                }
                for f in &st.outputs {
                    cache.access(layout.addr(f.index(), i, j, k));
                }
            }
        }
    }
}

/// Cache statistics of the **per-stage schedule** (original version):
/// every stage sweeps the whole domain before the next starts.
pub fn per_stage_schedule_stats(
    graph: &StageGraph,
    domain: Region3,
    cache_cfg: CacheConfig,
) -> CacheStats {
    let layout = FieldLayout::new(graph, domain);
    let mut cache = CacheSim::new(cache_cfg);
    for s in 0..graph.stage_count() {
        sweep_stage(&mut cache, &layout, graph, s, domain);
    }
    cache.stats()
}

/// Cache statistics of a **blocked schedule** (the (3+1)D wavefront):
/// blocks in order, all stages per block.
pub fn blocked_schedule_stats(
    graph: &StageGraph,
    domain: Region3,
    blocking: &Blocking,
    cache_cfg: CacheConfig,
) -> CacheStats {
    let layout = FieldLayout::new(graph, domain);
    let mut cache = CacheSim::new(cache_cfg);
    for block in &blocking.blocks {
        for s in 0..graph.stage_count() {
            let r = block.stage_regions[s];
            if !r.is_empty() {
                sweep_stage(&mut cache, &layout, graph, s, r);
            }
        }
    }
    cache.stats()
}

/// Compulsory (cold) miss floor: every distinct line of every field
/// touched at least once.
pub fn compulsory_miss_bytes(graph: &StageGraph, domain: Region3, line_bytes: usize) -> f64 {
    let field_lines = (domain.cells() * BYTES_PER_CELL).div_ceil(line_bytes);
    (graph.fields().len() * field_lines * line_bytes) as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpdata::mpdata_graph;
    use stencil_engine::BlockPlanner;

    fn cfg(kb: usize) -> CacheConfig {
        CacheConfig {
            capacity_bytes: kb * 1024,
            ways: 16,
            line_bytes: 64,
        }
    }

    #[test]
    fn blocked_schedule_slashes_misses() {
        // Scaled-down domain and cache preserving the ratio
        // working-set : cache of the paper setup.
        let (g, _) = mpdata_graph();
        let domain = Region3::of_extent(48, 32, 8);
        let cache = cfg(256);
        let per_stage = per_stage_schedule_stats(&g, domain, cache);
        // Size blocks to half the cache — the usual safety margin, and
        // what keeps the block working set clear of conflict evictions.
        let blocking = BlockPlanner::new(cache.capacity_bytes / 2)
            .min_depth(2)
            .plan_wavefront(&g, domain, domain)
            .unwrap();
        assert!(blocking.len() > 2, "need several blocks for a fair test");
        let blocked = blocked_schedule_stats(&g, domain, &blocking, cache);
        let ratio = per_stage.miss_bytes(64) / blocked.miss_bytes(64);
        assert!(
            ratio > 2.5,
            "blocked schedule must cut miss traffic sharply (got {ratio:.2}: {} vs {} lines);\n             at paper scale (94 array sweeps vs ~7 compulsory) the ratio exceeds 10x",
            per_stage.misses,
            blocked.misses
        );
    }

    #[test]
    fn blocked_misses_approach_compulsory_floor() {
        let (g, _) = mpdata_graph();
        let domain = Region3::of_extent(48, 32, 8);
        let cache = cfg(512);
        let blocking = BlockPlanner::new(cache.capacity_bytes / 2)
            .min_depth(2)
            .plan_wavefront(&g, domain, domain)
            .unwrap();
        let blocked = blocked_schedule_stats(&g, domain, &blocking, cache);
        let floor = compulsory_miss_bytes(&g, domain, 64);
        let excess = blocked.miss_bytes(64) / floor;
        assert!(
            excess < 2.0,
            "blocked miss bytes must be within 2× of the compulsory floor (got {excess:.2})"
        );
    }

    #[test]
    fn tiny_cache_defeats_blocking() {
        // With a cache far below one block's working set, even the
        // blocked schedule thrashes — blocking is not magic.
        let (g, _) = mpdata_graph();
        let domain = Region3::of_extent(32, 32, 8);
        let big = cfg(512);
        let tiny = cfg(8);
        let blocking = BlockPlanner::new(big.capacity_bytes)
            .min_depth(2)
            .plan_wavefront(&g, domain, domain)
            .unwrap();
        let with_big = blocked_schedule_stats(&g, domain, &blocking, big);
        let with_tiny = blocked_schedule_stats(&g, domain, &blocking, tiny);
        assert!(
            with_tiny.misses > 2 * with_big.misses,
            "tiny {} vs big {}",
            with_tiny.misses,
            with_big.misses
        );
    }

    #[test]
    fn layout_staggers_fields() {
        let (g, _) = mpdata_graph();
        let domain = Region3::of_extent(8, 8, 8);
        let l = FieldLayout::new(&g, domain);
        let a0 = l.addr(0, 0, 0, 0);
        let a1 = l.addr(1, 0, 0, 0);
        assert!(a1 - a0 >= (domain.cells() * 8) as u64);
        // Clamping mirrors the kernels.
        assert_eq!(l.addr(0, -3, 0, 0), l.addr(0, 0, 0, 0));
        assert_eq!(l.addr(0, 9, 7, 7), l.addr(0, 7, 7, 7));
    }
}
