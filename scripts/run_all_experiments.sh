#!/usr/bin/env bash
# Regenerates every table, figure and ablation of the reproduction into
# results/ (text + CSV embedded in each report). Takes well under a
# minute on a laptop: the experiments run on the simulated UV 2000.
set -euo pipefail
cd "$(dirname "$0")/.."
mkdir -p results
cargo build --release -p islands-bench

BINARIES=(
  fig1            # Fig. 1  — the two scenarios, counted
  table1          # Table 1 — original serial/parallel init, (3+1)D
  table2          # Table 2 — extra elements, variants A/B
  table3          # Table 3 + Fig. 2 — times, S_pr, S_ov
  table4          # Table 4 — Gflop/s, utilization, efficiency
  traffic         # §3.2    — 133 GB → 30 GB traffic claim
  variants        # §5      — variant A vs B
  ablation2d      # A1      — 2-D island grids
  ablation_teams  # A2      — islands within a CPU
  ablation_link   # A3      — interconnect sensitivity
  ablation_exchange # E8    — recompute vs exchange
  scaleout        # E9      — multi-IRU strong/weak scaling
  model_check     # E10     — closed-form model vs engine
  cache_study     # E11     — cache-model check of the (3+1)D premise
  halo_report     # analysis — per-stage halo/redundancy breakdown
)
for b in "${BINARIES[@]}"; do
  echo "== $b =="
  "./target/release/$b" | tee "results/$b.txt"
  echo
done
echo "All experiment reports written to results/."
