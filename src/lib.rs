//! # islands-of-cores
//!
//! Facade crate of the islands-of-cores reproduction (Szustak,
//! Wyrzykowski & Jakl, *Islands-of-Cores Approach for Harnessing
//! SMP/NUMA Architectures in Heterogeneous Stencil Computations*,
//! PaCT 2017). Re-exports the public API of every subsystem so examples
//! and downstream users need a single dependency.
//!
//! See the crate READMEs and `DESIGN.md` for the system inventory.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use islands_core as islands;
pub use mpdata;
pub use numa_sim as numa;
pub use perf_model as perf;
pub use stencil_engine as stencil;
pub use work_scheduler as scheduler;
