//! A numerical-weather-prediction-flavoured scenario: a moisture plume
//! advected by a rotating storm system (solid-body rotation in the
//! horizontal, closed domain), integrated with all three execution
//! strategies and cross-checked.
//!
//! This is the workload class the paper's introduction motivates —
//! MPDATA inside the EULAG dynamic core for weather simulation — scaled
//! to laptop size with the same domain *proportions* as the paper's
//! 1024×512×64 grid (16:8:1).
//!
//! Run: `cargo run --release --example weather_advection`

use islands_of_cores::mpdata::{
    rotating_cone, FusedExecutor, IslandsExecutor, OriginalExecutor, ReferenceExecutor,
};
use islands_of_cores::scheduler::{TeamSpec, WorkerPool};
use islands_of_cores::stencil::{Axis, Region3};
use std::time::Instant;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 16:8:1 proportions like the paper's grid.
    let domain = Region3::of_extent(96, 48, 6);
    let steps = 25;
    let base = rotating_cone(domain, 0.35);
    println!(
        "domain {}×{}×{} ({} cells), {} steps of a rotating storm\n",
        domain.i.len(),
        domain.j.len(),
        domain.k.len(),
        domain.cells(),
        steps
    );

    // Ground truth.
    let mut reference = base.clone();
    let t0 = Instant::now();
    ReferenceExecutor::new().run(&mut reference, steps);
    let t_ref = t0.elapsed();

    let pool = WorkerPool::new(4);

    let mut original = base.clone();
    let t0 = Instant::now();
    OriginalExecutor::new(&pool).run(&mut original, steps);
    let t_orig = t0.elapsed();

    let mut fused = base.clone();
    let t0 = Instant::now();
    FusedExecutor::new(&pool)
        .cache_bytes(512 * 1024)
        .run(&mut fused, steps)?;
    let t_fused = t0.elapsed();

    let mut islands = base.clone();
    let t0 = Instant::now();
    IslandsExecutor::new(&pool, TeamSpec::even(4, 2), Axis::I)
        .cache_bytes(512 * 1024)
        .run(&mut islands, steps)?;
    let t_islands = t0.elapsed();

    println!("strategy          host time   max |Δ| vs reference");
    println!("reference (1T)    {:>8.1?}   —", t_ref);
    println!(
        "original  (4T)    {:>8.1?}   {:.1e}",
        t_orig,
        original.x.max_abs_diff(&reference.x)
    );
    println!(
        "(3+1)D    (4T)    {:>8.1?}   {:.1e}",
        t_fused,
        fused.x.max_abs_diff(&reference.x)
    );
    println!(
        "islands   (2×2)   {:>8.1?}   {:.1e}",
        t_islands,
        islands.x.max_abs_diff(&reference.x)
    );

    let drift = islands.mass() / base.mass() - 1.0;
    println!(
        "\nphysics: mass drift {drift:+.2e}, min {:+.2e} (positive definite)",
        islands.x.min()
    );
    assert_eq!(islands.x.max_abs_diff(&reference.x), 0.0);
    assert!(islands.x.min() >= -1e-12);
    assert!(drift.abs() < 1e-9);
    println!("OK: all strategies agree bitwise; advection is conservative and positive.");
    Ok(())
}
