//! Quickstart: advect a Gaussian pulse through a box with the
//! islands-of-cores executor and check it against the serial reference.
//!
//! Run: `cargo run --release --example quickstart`

use islands_of_cores::mpdata::{gaussian_pulse, IslandsExecutor, ReferenceExecutor};
use islands_of_cores::scheduler::{TeamSpec, WorkerPool};
use islands_of_cores::stencil::{Axis, Region3};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A 64×32×16 box, uniform flow at Courant number 0.3 along i.
    let domain = Region3::of_extent(64, 32, 16);
    let mut fields = gaussian_pulse(domain, (0.3, 0.0, 0.0));
    let mass0 = fields.mass();
    let peak0 = fields.x.max();

    // Four workers grouped into two islands, domain cut along i
    // (the paper's variant A).
    let pool = WorkerPool::new(4);
    let teams = TeamSpec::even(4, 2);
    let islands = IslandsExecutor::new(&pool, teams, Axis::I).cache_bytes(512 * 1024);

    // Reference result for the same 20 steps.
    let mut check = fields.clone();
    ReferenceExecutor::new().run(&mut check, 20);

    islands.run(&mut fields, 20)?;

    println!("steps            : 20 (Courant 0.3 ⇒ pulse travels 6 cells)");
    println!("initial peak     : {peak0:.4}");
    println!("final peak       : {:.4}", fields.x.max());
    println!("mass drift       : {:+.3e}", fields.mass() / mass0 - 1.0);
    println!("min (positivity) : {:+.3e}", fields.x.min());
    println!(
        "vs reference     : max |Δ| = {:.3e} (bitwise-identical schedules)",
        fields.x.max_abs_diff(&check.x)
    );
    assert_eq!(fields.x.max_abs_diff(&check.x), 0.0);
    assert!(fields.x.min() >= 0.0);
    println!("OK: islands-of-cores reproduced the reference bitwise.");
    Ok(())
}
