//! Accuracy study: how the number of MPDATA passes (`iord`) affects
//! numerical diffusion, demonstrated on a torus where transport should
//! ideally be an exact circular shift.
//!
//! Run: `cargo run --release --example accuracy_study`

use islands_of_cores::mpdata::{
    gaussian_pulse, Boundary, MpdataFields, MpdataProblem, ReferenceExecutor,
};
use islands_of_cores::stencil::{Array3, Region3};

fn main() {
    let d = Region3::of_extent(64, 8, 8);
    let steps = 40; // 40 × 0.4 = 16 cells of travel
    let courant = 0.4;

    // A pulse on a torus with uniform flow: the exact solution after
    // `steps` is the initial pulse shifted by steps × courant cells.
    let make = || -> MpdataFields {
        let mut f = gaussian_pulse(d, (0.0, 0.0, 0.0));
        f.u1 = Array3::filled(d, courant);
        f
    };
    let initial = make();
    let exact_shift = (steps as f64 * courant) as i64;
    let exact = Array3::from_fn(d, |i, j, k| {
        initial
            .x
            .get((i - exact_shift).rem_euclid(d.i.len() as i64), j, k)
    });

    println!(
        "torus {}×{}×{}, {} steps at Courant {courant} (exact: shift by {exact_shift} cells)\n",
        d.i.len(),
        d.j.len(),
        d.k.len(),
        steps
    );
    println!(
        "{:>6}  {:>8}  {:>12}  {:>12}",
        "iord", "stages", "peak kept", "L1 error"
    );
    let peak0 = initial.x.max() - 2.0; // background is 2
    for iord in 1..=4 {
        let problem = MpdataProblem::with_iord(iord).with_boundary(Boundary::Periodic);
        let stages = problem.graph().stage_count();
        let exec = ReferenceExecutor::with_problem(problem);
        let mut f = make();
        exec.run(&mut f, steps);
        let peak = f.x.max() - 2.0;
        let mut l1 = 0.0;
        for (i, j, k) in d.points() {
            l1 += (f.x.get(i, j, k) - exact.get(i, j, k)).abs();
        }
        l1 /= d.cells() as f64;
        println!(
            "{:>6}  {:>8}  {:>11.1}%  {:>12.3e}",
            iord,
            stages,
            100.0 * peak / peak0,
            l1
        );
    }
    println!(
        "\nreading: the first-order pass smears the pulse badly; each corrective\n\
         iteration restores peak amplitude and cuts the transport error — the\n\
         reason MPDATA runs with at least one corrective pass (the paper's 17\n\
         stages are exactly iord = 2), and why its cost structure is what the\n\
         islands-of-cores approach optimizes."
    );
}
