//! The computation-vs-communication trade-off of §4.1, quantified: how
//! much redundant computation the islands approach buys (Table 2's
//! extra elements), and when that purchase pays off as a function of
//! interconnect speed.
//!
//! Run: `cargo run --release --example tradeoff_analysis`

use islands_of_cores::islands::{
    estimate, extra_elements, plan_fused, plan_islands, InitPolicy, Partition, Variant, Workload,
};
use islands_of_cores::mpdata::mpdata_graph;
use islands_of_cores::numa::{SimConfig, UvParams};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let w = Workload::paper();
    let (graph, _) = mpdata_graph();

    println!("## Cost side: redundant element updates (variant A, 1024×512×64)");
    println!(
        "{:>8}  {:>10}  {:>14}",
        "islands", "extra [%]", "extra updates"
    );
    for n in [2usize, 4, 8, 14, 28, 56] {
        let part = Partition::one_d(w.domain, Variant::A, n)?;
        let e = extra_elements(&graph, &part);
        println!("{n:>8}  {:>10.3}  {:>14}", e.percent(), e.extra_updates());
    }

    println!("\n## Benefit side: avoided communication (P = 8, link-speed sweep)");
    println!(
        "{:>6}  {:>12}  {:>12}  {:>8}  who wins",
        "scale", "(3+1)D [s]", "islands [s]", "S_pr"
    );
    let cfg = SimConfig::default();
    for factor in [0.25, 0.5, 1.0, 2.0, 4.0, 16.0] {
        let machine = UvParams::uv2000(8).scale_interconnect(factor).build();
        let fused = estimate(
            &machine,
            &plan_fused(&machine, &w, InitPolicy::ParallelFirstTouch)?,
            &w,
            &cfg,
        )?
        .total_seconds;
        let islands =
            estimate(&machine, &plan_islands(&machine, &w, Variant::A)?, &w, &cfg)?.total_seconds;
        let winner = if islands <= fused {
            "islands (recompute)"
        } else {
            "(3+1)D (communicate)"
        };
        println!(
            "{:>6}  {:>12.2}  {:>12.2}  {:>8.2}  {winner}",
            format!("×{factor}"),
            fused,
            islands,
            fused / islands
        );
    }
    println!(
        "\nreading: a few percent of redundant updates (cost) eliminates all\n\
         intra-step inter-island traffic and synchronization (benefit). The slower\n\
         the interconnect relative to the cores, the bigger the payoff — the exact\n\
         correlation §4.1 describes with Fig. 1's two scenarios."
    );
    Ok(())
}
