//! Autotuning: ask the closed-form model which strategy to run for a
//! range of machines and workloads, then double-check each
//! recommendation against the discrete-event engine.
//!
//! Run: `cargo run --release --example autotune`

use islands_of_cores::islands::{
    estimate, plan_fused, plan_islands, plan_original, InitPolicy, Variant, Workload,
};
use islands_of_cores::numa::{SimConfig, UvParams};
use islands_of_cores::perf::{recommend, Strategy};
use islands_of_cores::stencil::Region3;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let cfg = SimConfig::default();
    let cases = [
        ("paper grid, 2 sockets", Workload::paper(), 2usize),
        ("paper grid, 14 sockets", Workload::paper(), 14),
        (
            "tall grid (j-major), 8 sockets",
            Workload::new(Region3::of_extent(256, 1024, 64), 50),
            8,
        ),
        (
            "small grid, 4 sockets",
            Workload::new(Region3::of_extent(128, 64, 32), 50),
            4,
        ),
    ];

    println!(
        "{:<32} {:>10} {:>9} {:>12} {:>12} {:>8}",
        "case", "strategy", "variant", "model [s]", "engine [s]", "best?"
    );
    for (name, w, sockets) in cases {
        let machine = UvParams::uv2000(sockets).build();
        let rec = recommend(&machine, &w, &cfg);

        // Engine times for all three strategies to grade the pick.
        let orig = estimate(
            &machine,
            &plan_original(&machine, &w, InitPolicy::ParallelFirstTouch),
            &w,
            &cfg,
        )?
        .total_seconds;
        let fused = estimate(
            &machine,
            &plan_fused(&machine, &w, InitPolicy::ParallelFirstTouch)?,
            &w,
            &cfg,
        )?
        .total_seconds;
        let islands = estimate(
            &machine,
            &plan_islands(&machine, &w, rec.variant)?,
            &w,
            &cfg,
        )?
        .total_seconds;
        let engine_time = match rec.strategy {
            Strategy::Original => orig,
            Strategy::Fused => fused,
            Strategy::Islands => islands,
        };
        let best = orig.min(fused).min(islands);
        let graded = engine_time <= best * 1.05;
        println!(
            "{:<32} {:>10?} {:>9} {:>12.2} {:>12.2} {:>8}",
            name,
            rec.strategy,
            if rec.variant == Variant::A { "A" } else { "B" },
            rec.total_seconds,
            engine_time,
            if graded { "yes" } else { "NO" },
        );
        assert!(
            graded,
            "{name}: the model picked {:?} but the engine's best is {best:.2}s",
            rec.strategy
        );
    }
    println!("\nOK: every recommendation is within 5% of the engine's best strategy.");
    Ok(())
}
