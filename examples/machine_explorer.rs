//! Explore the simulated SGI UV 2000: build configurations from 1 to 14
//! sockets, run the paper workload under every execution strategy, and
//! print a miniature Table 3.
//!
//! Run: `cargo run --release --example machine_explorer [P ...]`

use islands_of_cores::islands::{
    estimate, plan_fused, plan_islands, plan_original, InitPolicy, Variant, Workload,
};
use islands_of_cores::numa::{SimConfig, UvParams};
use islands_of_cores::perf::sustained_gflops;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let ps: Vec<usize> = {
        let args: Vec<usize> = std::env::args()
            .skip(1)
            .map(|a| a.parse())
            .collect::<Result<_, _>>()?;
        if args.is_empty() {
            vec![1, 2, 4, 8, 14]
        } else {
            args
        }
    };
    let w = Workload::paper();
    let cfg = SimConfig::default();

    println!(
        "{:>3}  {:>10}  {:>10}  {:>10}  {:>8}  {:>8}  {:>12}",
        "P", "orig [s]", "(3+1)D [s]", "islands[s]", "S_pr", "S_ov", "isl Gflop/s"
    );
    for p in ps {
        let machine = UvParams::uv2000(p).build();
        let orig = estimate(
            &machine,
            &plan_original(&machine, &w, InitPolicy::ParallelFirstTouch),
            &w,
            &cfg,
        )?
        .total_seconds;
        let fused = estimate(
            &machine,
            &plan_fused(&machine, &w, InitPolicy::ParallelFirstTouch)?,
            &w,
            &cfg,
        )?
        .total_seconds;
        let islands =
            estimate(&machine, &plan_islands(&machine, &w, Variant::A)?, &w, &cfg)?.total_seconds;
        println!(
            "{:>3}  {:>10.2}  {:>10.2}  {:>10.2}  {:>8.2}  {:>8.2}  {:>12.1}",
            p,
            orig,
            fused,
            islands,
            fused / islands,
            orig / islands,
            sustained_gflops(w.domain, w.steps, islands),
        );
    }
    println!(
        "\n(one simulated machine per row; the paper's measured P=14 row is\n\
         original 2.81 s, (3+1)D 10.40 s, islands 1.01 s, S_pr 10.3, S_ov 2.78)"
    );
    Ok(())
}
